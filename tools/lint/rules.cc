/**
 * @file
 * The redsoc_lint rule set (R1-R8). Every rule walks the token
 * stream produced by lexer.cc; see lint.h for the rule catalogue and
 * the reasoning behind each.
 */

#include "lint.h"

#include <algorithm>
#include <cctype>

namespace redsoc::lint {

namespace {

bool
isIdent(const Token &t, const char *s)
{
    return t.kind == TokKind::Ident && t.text == s;
}

bool
isPunct(const Token &t, const char *s)
{
    return t.kind == TokKind::Punct && t.text == s;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Identifier that plausibly names a cycle/tick quantity. */
bool
cycleIsh(const Token &t)
{
    if (t.kind != TokKind::Ident)
        return false;
    std::string low;
    low.reserve(t.text.size());
    for (char c : t.text)
        low.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    return low.find("cycle") != std::string::npos ||
           low.find("tick") != std::string::npos;
}

/** Integer type names narrower than 64 bits. */
bool
narrowIntType(const std::string &s)
{
    static const std::set<std::string> kNarrow = {
        "int",     "unsigned", "short",    "u8",      "u16",
        "u32",     "s8",       "s16",      "s32",     "uint8_t",
        "uint16_t", "uint32_t", "int8_t",  "int16_t", "int32_t"};
    return kNarrow.count(s) != 0;
}

/** Index of the matching closer for the opener at @p open. */
size_t
matchDelim(const std::vector<Token> &t, size_t open, const char *o,
           const char *c)
{
    int depth = 0;
    for (size_t i = open; i < t.size(); ++i) {
        if (isPunct(t[i], o))
            ++depth;
        else if (isPunct(t[i], c) && --depth == 0)
            return i;
    }
    return t.size();
}

void
emit(const SourceFile &sf, int line, const char *rule,
     std::string message, std::vector<Finding> &out)
{
    if (sf.allowed(line, rule))
        return;
    out.push_back(Finding{sf.path, line, rule, std::move(message)});
}

// -------------------------------------------------------------------
// Struct parsing (R1 / R4)
// -------------------------------------------------------------------

/** Keywords that mark a member statement as not-an-instance-field. */
bool
nonFieldLeader(const std::string &s)
{
    return s == "static" || s == "using" || s == "typedef" ||
           s == "friend" || s == "static_assert" || s == "virtual" ||
           s == "explicit" || s == "operator" || s == "template" ||
           s == "public" || s == "private" || s == "protected";
}

/**
 * Parse the body of one struct/class starting at the '{' at @p open;
 * returns the index just past the matching '}'. Nested struct/class
 * definitions recurse into @p all.
 */
size_t
parseStructBody(const SourceFile &sf, size_t open, StructInfo &info,
                std::vector<StructInfo> &all);

/**
 * Handle a "struct"/"class" keyword at @p i. Returns the index to
 * resume scanning from. Only definitions (with a body) produce a
 * StructInfo; forward declarations and elaborated type specifiers
 * ("struct Foo x;") are skipped.
 */
size_t
parseStructAt(const SourceFile &sf, size_t i,
              std::vector<StructInfo> &all)
{
    const auto &t = sf.toks;
    size_t j = i + 1;
    std::string name;
    int line = t[i].line;
    if (j < t.size() && t[j].kind == TokKind::Ident) {
        name = t[j].text;
        line = t[j].line;
        ++j;
    }
    // Skip a base-clause up to the opening brace.
    while (j < t.size() && !isPunct(t[j], "{") && !isPunct(t[j], ";") &&
           !isPunct(t[j], ")"))
        ++j;
    if (j >= t.size() || !isPunct(t[j], "{"))
        return j; // forward declaration / parameter / return type
    StructInfo info;
    info.name = name;
    info.line = line;
    size_t end = parseStructBody(sf, j, info, all);
    all.push_back(std::move(info));
    return end;
}

size_t
parseStructBody(const SourceFile &sf, size_t open, StructInfo &info,
                std::vector<StructInfo> &all)
{
    const auto &t = sf.toks;
    const size_t close = matchDelim(t, open, "{", "}");
    size_t i = open + 1;
    while (i < close) {
        const Token &tok = t[i];
        if (isPunct(tok, ";")) {
            ++i;
            continue;
        }
        if (isIdent(tok, "struct") || isIdent(tok, "class")) {
            i = parseStructAt(sf, i, all);
            // Skip any declarator between the nested body and ';'.
            while (i < close && !isPunct(t[i], ";"))
                ++i;
            continue;
        }
        if (isIdent(tok, "enum")) {
            size_t j = i;
            while (j < close && !isPunct(t[j], "{") &&
                   !isPunct(t[j], ";"))
                ++j;
            if (j < close && isPunct(t[j], "{"))
                j = matchDelim(t, j, "{", "}");
            while (j < close && !isPunct(t[j], ";"))
                ++j;
            i = j + 1;
            continue;
        }
        if (tok.kind == TokKind::Ident && nonFieldLeader(tok.text)) {
            // Skip the whole member (to ';' at this depth, or past a
            // function/initializer body).
            size_t j = i;
            while (j < close) {
                if (isPunct(t[j], "{")) {
                    j = matchDelim(t, j, "{", "}") + 1;
                    if (j < close && isPunct(t[j], ";"))
                        ++j;
                    break;
                }
                if (isPunct(t[j], ";")) {
                    ++j;
                    break;
                }
                ++j;
            }
            i = j;
            continue;
        }
        if (isPunct(tok, "~")) { // destructor
            size_t j = i;
            while (j < close && !isPunct(t[j], "{") &&
                   !isPunct(t[j], ";"))
                ++j;
            if (j < close && isPunct(t[j], "{"))
                j = matchDelim(t, j, "{", "}");
            i = j + 1;
            continue;
        }

        // A data member or a function. Scan forward classifying by
        // the first structural token: '(' => function (skip it and
        // its body if any), '=' => initialized member, '{' preceded
        // by the declarator => brace-initialized member (unless the
        // '{' follows ')' / const / noexcept — then a function body),
        // ';' => member without initializer.
        size_t j = i;
        bool initialized = false;
        bool is_function = false;
        size_t name_end = close; ///< token index of terminator
        int angle = 0;
        while (j < close) {
            const Token &c = t[j];
            if (c.kind == TokKind::Ident &&
                c.text.rfind("REDSOC_", 0) == 0) {
                // Thread-safety annotation macro: its paren group is
                // not a function parameter list.
                if (j + 1 < close && isPunct(t[j + 1], "("))
                    j = matchDelim(t, j + 1, "(", ")");
                ++j;
                continue;
            }
            if (isIdent(c, "operator")) {
                // "T &operator=(...)": the '=' in the name is not a
                // field initializer.
                is_function = true;
                while (j < close && !isPunct(t[j], ";")) {
                    if (isPunct(t[j], "{")) {
                        j = matchDelim(t, j, "{", "}") + 1;
                        break;
                    }
                    ++j;
                }
                if (j < close && isPunct(t[j], ";"))
                    ++j;
                break;
            }
            if (isPunct(c, "<"))
                ++angle;
            else if (isPunct(c, ">") && angle > 0)
                --angle;
            else if (angle == 0 && isPunct(c, "(")) {
                is_function = true;
                j = matchDelim(t, j, "(", ")") + 1;
                // Trailing specifiers then body or ';'.
                while (j < close && !isPunct(t[j], "{") &&
                       !isPunct(t[j], ";") && !isPunct(t[j], "="))
                    ++j;
                if (j < close && isPunct(t[j], "="))
                    // "= default/delete/0" — still a function.
                    while (j < close && !isPunct(t[j], ";"))
                        ++j;
                if (j < close && isPunct(t[j], "{"))
                    j = matchDelim(t, j, "{", "}");
                ++j;
                break;
            } else if (angle == 0 && isPunct(c, "=")) {
                initialized = true;
                name_end = j;
                while (j < close && !isPunct(t[j], ";")) {
                    if (isPunct(t[j], "{"))
                        j = matchDelim(t, j, "{", "}");
                    ++j;
                }
                ++j;
                break;
            } else if (angle == 0 && isPunct(c, "{")) {
                initialized = true;
                name_end = j;
                j = matchDelim(t, j, "{", "}") + 1;
                while (j < close && !isPunct(t[j], ";"))
                    ++j;
                ++j;
                break;
            } else if (angle == 0 && isPunct(c, ";")) {
                name_end = j;
                ++j;
                break;
            }
            ++j;
        }
        if (!is_function && name_end > i && name_end < close) {
            // Declarator name: last identifier before the terminator,
            // skipping array extents and bitfield widths.
            size_t k = name_end;
            std::string fname;
            int fline = t[i].line;
            while (k > i) {
                --k;
                if (isPunct(t[k], ")")) {
                    // Skip an annotation's argument group backwards.
                    int pd = 1;
                    while (k > i && pd > 0) {
                        --k;
                        if (isPunct(t[k], ")"))
                            ++pd;
                        else if (isPunct(t[k], "("))
                            --pd;
                    }
                    continue;
                }
                if (t[k].kind == TokKind::Ident &&
                    t[k].text.rfind("REDSOC_", 0) == 0)
                    continue;
                if (t[k].kind == TokKind::Ident) {
                    fname = t[k].text;
                    fline = t[k].line;
                    break;
                }
            }
            if (!fname.empty())
                info.fields.push_back(
                    FieldInfo{fname, fline, initialized});
        }
        i = (j > i) ? j : i + 1;
    }
    return close + 1;
}

} // namespace

std::vector<StructInfo>
parseStructs(const SourceFile &sf)
{
    std::vector<StructInfo> all;
    const auto &t = sf.toks;
    for (size_t i = 0; i < t.size();) {
        if (isIdent(t[i], "struct") || isIdent(t[i], "class")) {
            // Only treat as a definition opener at top level or in a
            // namespace/struct: parseStructAt handles the rest.
            i = parseStructAt(sf, i, all);
        } else {
            ++i;
        }
    }
    return all;
}

// -------------------------------------------------------------------
// R1: init-field
// -------------------------------------------------------------------

void
ruleInitField(const SourceFile &sf, std::vector<Finding> &out)
{
    for (const StructInfo &s : parseStructs(sf)) {
        if (!endsWith(s.name, "Config") && !endsWith(s.name, "Stats"))
            continue;
        for (const FieldInfo &f : s.fields) {
            if (f.initialized)
                continue;
            emit(sf, f.line, "init-field",
                 "field '" + s.name + "::" + f.name +
                     "' has no in-class initializer; every *Config/"
                     "*Stats field must be deterministically "
                     "initialized",
                 out);
        }
    }
}

// -------------------------------------------------------------------
// R2: nondet-api
// -------------------------------------------------------------------

void
ruleNondetApi(const SourceFile &sf, std::vector<Finding> &out)
{
    static const std::set<std::string> kBannedCalls = {
        "rand",   "srand",   "rand_r",      "drand48", "lrand48",
        "random", "time",    "clock",       "gettimeofday",
        "getrandom"};
    const auto &t = sf.toks;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        if (t[i].text == "random_device") {
            emit(sf, t[i].line, "nondet-api",
                 "std::random_device is nondeterministic across runs; "
                 "use redsoc::Rng with a fixed seed",
                 out);
            continue;
        }
        if (!kBannedCalls.count(t[i].text))
            continue;
        if (i + 1 >= t.size() || !isPunct(t[i + 1], "("))
            continue;
        // Member calls (obj.time(...)) are fine; std:: / global
        // qualification is the banned C API.
        if (i > 0 && (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->")))
            continue;
        if (i > 1 && isPunct(t[i - 1], "::") &&
            t[i - 2].kind == TokKind::Ident && t[i - 2].text != "std")
            continue;
        // A preceding identifier / '&' / '*' marks a declaration
        // ("SubCycleClock clock(...)", "const Clock &clock() const"),
        // and a preceding ':' a constructor member-initializer
        // (": clock(3, 500)") — not calls of the banned C API.
        if (i > 0 && (t[i - 1].kind == TokKind::Ident ||
                      isPunct(t[i - 1], "&") || isPunct(t[i - 1], "*") ||
                      isPunct(t[i - 1], ":")))
            continue;
        emit(sf, t[i].line, "nondet-api",
             "call to nondeterministic API '" + t[i].text +
                 "' (wall clock / unseeded randomness breaks "
                 "bit-reproducibility); use redsoc::Rng or a "
                 "simulated clock",
             out);
    }
}

// -------------------------------------------------------------------
// R2: nondet-iter
// -------------------------------------------------------------------

namespace {

/** Names of variables declared in this file with an unordered
 *  container type. */
std::set<std::string>
unorderedVars(const SourceFile &sf)
{
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    std::set<std::string> vars;
    const auto &t = sf.toks;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !kUnordered.count(t[i].text))
            continue;
        size_t j = i + 1;
        if (j < t.size() && isPunct(t[j], "<"))
            j = matchDelim(t, j, "<", ">") + 1;
        if (j < t.size() && isPunct(t[j], "&"))
            ++j; // references alias a container all the same
        if (j < t.size() && t[j].kind == TokKind::Ident &&
            (j + 1 >= t.size() || !isPunct(t[j + 1], "(")))
            vars.insert(t[j].text);
    }
    return vars;
}

} // namespace

void
ruleNondetIter(const SourceFile &sf, std::vector<Finding> &out)
{
    const std::set<std::string> vars = unorderedVars(sf);
    if (vars.empty())
        return;
    const auto &t = sf.toks;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t[i], "for") || !isPunct(t[i + 1], "("))
            continue;
        const size_t open = i + 1;
        const size_t close = matchDelim(t, open, "(", ")");
        // Range-for: a single ':' at paren depth 1 ('::' lexes as one
        // token, so a lone ':' is unambiguous).
        size_t colon = 0;
        int depth = 0;
        for (size_t j = open; j < close; ++j) {
            if (isPunct(t[j], "(") || isPunct(t[j], "[") ||
                isPunct(t[j], "{"))
                ++depth;
            else if (isPunct(t[j], ")") || isPunct(t[j], "]") ||
                     isPunct(t[j], "}"))
                --depth;
            else if (isPunct(t[j], ":") && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        for (size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == TokKind::Ident && vars.count(t[j].text)) {
                emit(sf, t[j].line, "nondet-iter",
                     "range-for over unordered container '" +
                         t[j].text +
                         "': iteration order is unspecified and "
                         "varies run to run; iterate a sorted copy "
                         "or use an ordered container",
                     out);
                break;
            }
        }
    }
}

// -------------------------------------------------------------------
// R2: ptr-key-order
// -------------------------------------------------------------------

void
rulePtrKeyOrder(const SourceFile &sf, std::vector<Finding> &out)
{
    static const std::set<std::string> kAssoc = {
        "map",           "set",           "multimap",
        "multiset",      "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset"};
    const auto &t = sf.toks;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident || !kAssoc.count(t[i].text))
            continue;
        if (!isPunct(t[i + 1], "<"))
            continue;
        // Require std:: qualification (or unqualified in a file that
        // has no competing 'map' identifier — keep it strict: only
        // std::).
        if (!(i > 1 && isPunct(t[i - 1], "::") &&
              isIdent(t[i - 2], "std")))
            continue;
        // First template argument: up to ',' or '>' at angle depth 1.
        int angle = 0;
        size_t last_star = 0;
        for (size_t j = i + 1; j < t.size(); ++j) {
            if (isPunct(t[j], "<"))
                ++angle;
            else if (isPunct(t[j], ">")) {
                if (--angle == 0)
                    break;
            } else if (angle == 1 && isPunct(t[j], ",")) {
                break;
            } else if (angle == 1 && isPunct(t[j], "*")) {
                last_star = j;
            }
        }
        if (last_star != 0)
            emit(sf, t[i].line, "ptr-key-order",
                 "associative container keyed by a pointer: ordering/"
                 "hashing follows allocation addresses, which differ "
                 "run to run; key by a stable id (SeqNum, index, "
                 "name) instead",
                 out);
    }
}

// -------------------------------------------------------------------
// R3: cycle-narrow
// -------------------------------------------------------------------

void
ruleCycleNarrow(const SourceFile &sf, std::vector<Finding> &out)
{
    const auto &t = sf.toks;
    for (size_t i = 0; i < t.size(); ++i) {
        // static_cast<NARROW>(... cycleish ...)
        if (isIdent(t[i], "static_cast") && i + 1 < t.size() &&
            isPunct(t[i + 1], "<")) {
            const size_t gt = matchDelim(t, i + 1, "<", ">");
            bool narrow = false;
            for (size_t j = i + 2; j < gt; ++j) {
                if (t[j].kind != TokKind::Ident)
                    continue;
                if (narrowIntType(t[j].text))
                    narrow = true;
                if (t[j].text == "long") // unsigned long (long): 64-bit
                    narrow = false;
            }
            if (!narrow || gt + 1 >= t.size() ||
                !isPunct(t[gt + 1], "("))
                continue;
            const size_t rp = matchDelim(t, gt + 1, "(", ")");
            for (size_t j = gt + 2; j < rp; ++j) {
                if (cycleIsh(t[j])) {
                    emit(sf, t[j].line, "cycle-narrow",
                         "64-bit cycle/tick value '" + t[j].text +
                             "' cast to a 32-bit-or-smaller type; "
                             "keep cycle math in Cycle/Tick (u64)",
                         out);
                    break;
                }
            }
            continue;
        }
        // Implicit: NARROW name = ... cycleish ... ;
        if (t[i].kind == TokKind::Ident && narrowIntType(t[i].text) &&
            i + 2 < t.size() && t[i + 1].kind == TokKind::Ident &&
            isPunct(t[i + 2], "=") &&
            // not preceded by a type-forming token (e.g. "unsigned
            // int x" handled by the 'int' hit; "const" fine)
            !(i > 0 && isPunct(t[i - 1], "<"))) {
            size_t j = i + 3;
            bool has_cast = false;
            size_t cycle_at = 0;
            int depth = 0;
            for (; j < t.size(); ++j) {
                // A cycle passed *into* a call whose result feeds the
                // variable is not itself narrowed — skip arguments.
                if (t[j].kind == TokKind::Ident && j + 1 < t.size() &&
                    isPunct(t[j + 1], "(") && !cycleIsh(t[j])) {
                    j = matchDelim(t, j + 1, "(", ")");
                    continue;
                }
                if (isPunct(t[j], "(") || isPunct(t[j], "{"))
                    ++depth;
                else if (isPunct(t[j], ")") || isPunct(t[j], "}"))
                    --depth;
                else if (isPunct(t[j], ";") && depth <= 0)
                    break;
                else if (isIdent(t[j], "static_cast"))
                    has_cast = true;
                else if (cycle_at == 0 && cycleIsh(t[j]))
                    cycle_at = j;
            }
            if (cycle_at != 0 && !has_cast)
                emit(sf, t[cycle_at].line, "cycle-narrow",
                     "cycle/tick expression implicitly narrowed into "
                     "32-bit-or-smaller variable '" + t[i + 1].text +
                         "'; declare it Cycle/Tick (u64)",
                     out);
        }
    }
}

// -------------------------------------------------------------------
// R3: float-accum
// -------------------------------------------------------------------

void
ruleFloatAccum(const SourceFile &sf,
               const std::vector<std::string> &exempt,
               std::vector<Finding> &out)
{
    for (const std::string &prefix : exempt)
        if (sf.path.rfind(prefix, 0) == 0)
            return;

    const auto &t = sf.toks;
    // Variables declared float/double anywhere in the file.
    std::set<std::string> fvars;
    for (size_t i = 0; i + 1 < t.size(); ++i)
        if ((isIdent(t[i], "double") || isIdent(t[i], "float")) &&
            t[i + 1].kind == TokKind::Ident &&
            (i + 2 >= t.size() || !isPunct(t[i + 2], "(")))
            fvars.insert(t[i + 1].text);
    if (fvars.empty())
        return;

    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (!(isIdent(t[i], "for") || isIdent(t[i], "while")) ||
            !isPunct(t[i + 1], "("))
            continue;
        const size_t open = i + 1;
        const size_t close = matchDelim(t, open, "(", ")");
        bool cycle_loop = false;
        for (size_t j = open + 1; j < close; ++j)
            if (cycleIsh(t[j]))
                cycle_loop = true;
        if (!cycle_loop)
            continue;
        // Body: brace block or single statement.
        size_t body_begin = close + 1;
        size_t body_end;
        if (body_begin < t.size() && isPunct(t[body_begin], "{"))
            body_end = matchDelim(t, body_begin, "{", "}");
        else {
            body_end = body_begin;
            while (body_end < t.size() && !isPunct(t[body_end], ";"))
                ++body_end;
        }
        for (size_t j = body_begin; j + 1 < body_end; ++j) {
            if (t[j].kind == TokKind::Ident && fvars.count(t[j].text) &&
                (isPunct(t[j + 1], "+=") || isPunct(t[j + 1], "-="))) {
                emit(sf, t[j].line, "float-accum",
                     "floating-point accumulation into '" + t[j].text +
                         "' inside a per-cycle loop: rounding depends "
                         "on iteration order; accumulate integer "
                         "ticks and convert once (allowed only under "
                         "src/power)",
                     out);
            }
        }
    }
}

// -------------------------------------------------------------------
// R4: stat-complete
// -------------------------------------------------------------------

namespace {

int
countIdent(const SourceFile &sf, const std::string &name)
{
    int n = 0;
    for (const Token &t : sf.toks)
        if (t.kind == TokKind::Ident && t.text == name)
            ++n;
    return n;
}

} // namespace

// -------------------------------------------------------------------
// Enum parsing + R5: trace-complete
// -------------------------------------------------------------------

std::vector<EnumInfo>
parseEnums(const SourceFile &sf)
{
    const auto &t = sf.toks;
    std::vector<EnumInfo> out;
    for (size_t i = 0; i < t.size(); ++i) {
        if (!isIdent(t[i], "enum"))
            continue;
        size_t j = i + 1;
        if (j < t.size() &&
            (isIdent(t[j], "class") || isIdent(t[j], "struct")))
            ++j;
        if (j >= t.size() || t[j].kind != TokKind::Ident)
            continue; // unnamed enum: nothing to wire a rule to
        EnumInfo info;
        info.name = t[j].text;
        info.line = t[j].line;
        // Skip an optional underlying-type clause up to '{'; a ';'
        // first means this was only a forward declaration.
        ++j;
        while (j < t.size() && !isPunct(t[j], "{") &&
               !isPunct(t[j], ";"))
            ++j;
        if (j >= t.size() || !isPunct(t[j], "{"))
            continue;
        const size_t close = matchDelim(t, j, "{", "}");
        for (size_t k = j + 1; k < close; ++k) {
            if (t[k].kind != TokKind::Ident)
                continue;
            info.enumerators.push_back(
                EnumeratorInfo{t[k].text, t[k].line});
            // Skip any "= expr" initializer to the next ',' at
            // enumerator depth (initializers may nest parens/braces).
            int depth = 0;
            while (k + 1 < close) {
                const Token &n = t[k + 1];
                if (isPunct(n, "(") || isPunct(n, "{"))
                    ++depth;
                else if (isPunct(n, ")") || isPunct(n, "}"))
                    --depth;
                else if (isPunct(n, ",") && depth == 0)
                    break;
                ++k;
            }
            ++k; // the ','
        }
        out.push_back(std::move(info));
        i = close;
    }
    return out;
}

void
ruleTraceComplete(const SourceFile &header,
                  const std::string &enum_name,
                  const SourceFile &exporter,
                  std::vector<Finding> &out)
{
    for (const EnumInfo &e : parseEnums(header)) {
        if (e.name != enum_name)
            continue;
        for (const EnumeratorInfo &en : e.enumerators) {
            if (en.name == "NUM")
                continue; // count sentinel, never a real event
            if (countIdent(exporter, en.name) < 2)
                emit(header, en.line, "trace-complete",
                     enum_name + " enumerator '" + en.name +
                         "' is not handled by every trace exporter (" +
                         exporter.path +
                         " must mention it at least twice: the Chrome "
                         "and Konata switches each)",
                     out);
        }
    }
}

void
ruleAuditComplete(const SourceFile &header,
                  const std::string &enum_name,
                  const SourceFile &tests,
                  std::vector<Finding> &out)
{
    for (const EnumInfo &e : parseEnums(header)) {
        if (e.name != enum_name)
            continue;
        for (const EnumeratorInfo &en : e.enumerators) {
            if (en.name == "NUM")
                continue; // count sentinel, never a real invariant
            if (countIdent(tests, en.name) < 1)
                emit(header, en.line, "audit-complete",
                     enum_name + " enumerator '" + en.name +
                         "' has no corrupting unit test (" +
                         tests.path +
                         " must mention it at least once: every "
                         "runtime invariant check needs a test "
                         "proving it fires)",
                     out);
        }
    }
}

void
ruleCritpathComplete(const SourceFile &header,
                     const std::string &enum_name,
                     const SourceFile &builder,
                     std::vector<Finding> &out)
{
    for (const EnumInfo &e : parseEnums(header)) {
        if (e.name != enum_name)
            continue;
        for (const EnumeratorInfo &en : e.enumerators) {
            if (en.name == "NUM")
                continue; // count sentinel, never a real event
            if (countIdent(builder, en.name) < 1)
                emit(header, en.line, "critpath-complete",
                     enum_name + " enumerator '" + en.name +
                         "' is not handled by the dependence-graph "
                         "builder (" + builder.path +
                         " must consume or explicitly ignore it in "
                         "the event switch, or re-timed sweeps "
                         "silently lose that pipeline behavior)",
                     out);
        }
    }
}

void
ruleStatComplete(const SourceFile &header,
                 const std::string &struct_name,
                 const SourceFile &serializer,
                 const SourceFile &comparator,
                 std::vector<Finding> &out)
{
    for (const StructInfo &s : parseStructs(header)) {
        if (s.name != struct_name)
            continue;
        for (const FieldInfo &f : s.fields) {
            if (countIdent(serializer, f.name) < 2)
                emit(header, f.line, "stat-complete",
                     struct_name + " field '" + f.name +
                         "' is missing from the run-cache serializer/"
                         "deserializer (" + serializer.path +
                         "); bump RunCache::kFormatVersion and add "
                         "it, or the cache will silently drop it",
                     out);
            if (countIdent(comparator, f.name) < 1)
                emit(header, f.line, "stat-complete",
                     struct_name + " field '" + f.name +
                         "' is missing from the kernel-equivalence "
                         "comparator (" + comparator.path +
                         "); the Scan/Event differential suite would "
                         "not catch a divergence in it",
                     out);
        }
    }
}

// -------------------------------------------------------------------
// R8: hot-alloc
// -------------------------------------------------------------------

namespace {

/** Keywords whose "(...) {" shape is a control statement, not a
 *  function definition. */
bool
controlKeyword(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "catch" || s == "return" || s == "sizeof";
}

/**
 * True when @p name names a function *definition* at @p i: the
 * identifier is followed by a parameter list whose closer leads —
 * possibly through const/noexcept/override — to a '{'.
 */
bool
isFunctionDefinition(const std::vector<Token> &t, size_t i)
{
    if (i + 1 >= t.size() || !isPunct(t[i + 1], "("))
        return false;
    size_t j = matchDelim(t, i + 1, "(", ")");
    if (j >= t.size())
        return false;
    ++j;
    while (j < t.size() &&
           (isIdent(t[j], "const") || isIdent(t[j], "noexcept") ||
            isIdent(t[j], "override") || isIdent(t[j], "final")))
        ++j;
    return j < t.size() && isPunct(t[j], "{");
}

} // namespace

void
ruleHotAlloc(const SourceFile &sf,
             const std::vector<std::string> &hot_paths,
             const std::vector<std::string> &hot_functions,
             std::vector<Finding> &out)
{
    bool in_scope = false;
    for (const std::string &prefix : hot_paths)
        in_scope = in_scope || sf.path.rfind(prefix, 0) == 0;
    if (!in_scope)
        return;

    const auto &t = sf.toks;

    // Containers pre-sized *somewhere in this file* (the SoA lanes
    // are resize()d at run() start; scratch vectors are reserve()d in
    // the constructor): push_back into those is amortized-free and
    // allowed.
    std::set<std::string> presized;
    for (size_t i = 0; i + 3 < t.size(); ++i)
        if (t[i].kind == TokKind::Ident && isPunct(t[i + 1], ".") &&
            (isIdent(t[i + 2], "reserve") ||
             isIdent(t[i + 2], "resize")) &&
            isPunct(t[i + 3], "("))
            presized.insert(t[i].text);

    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            controlKeyword(t[i].text) ||
            std::find(hot_functions.begin(), hot_functions.end(),
                      t[i].text) == hot_functions.end() ||
            !isFunctionDefinition(t, i))
            continue;
        const std::string &fn = t[i].text;
        size_t body = matchDelim(t, i + 1, "(", ")") + 1;
        while (body < t.size() && !isPunct(t[body], "{"))
            ++body;
        const size_t end = matchDelim(t, body, "{", "}");
        for (size_t j = body + 1; j < end; ++j) {
            if (isIdent(t[j], "new")) {
                emit(sf, t[j].line, "hot-alloc",
                     "'new' inside per-cycle scheduler function '" +
                         fn + "': the hot loops must stay "
                         "allocation-free (pre-size at run() start)",
                     out);
            } else if ((isIdent(t[j], "push_back") ||
                        isIdent(t[j], "emplace_back")) &&
                       j >= 2 && isPunct(t[j - 1], ".") &&
                       t[j - 2].kind == TokKind::Ident &&
                       !presized.count(t[j - 2].text)) {
                emit(sf, t[j].line, "hot-alloc",
                     t[j].text + " into '" + t[j - 2].text +
                         "' inside per-cycle scheduler function '" +
                         fn + "' with no reserve()/resize() in this "
                         "file: growth reallocates mid-cycle",
                     out);
            } else if (isIdent(t[j], "function") && j + 1 < end &&
                       isPunct(t[j + 1], "<")) {
                emit(sf, t[j].line, "hot-alloc",
                     "std::function constructed inside per-cycle "
                     "scheduler function '" + fn +
                         "': type-erased callables heap-allocate; "
                         "use a template or function pointer",
                     out);
            }
        }
        i = end;
    }
}

} // namespace redsoc::lint

/**
 * @file
 * bench_proc: multi-core LLC contention sweep. Runs a fixed
 * multi-programmed mix over a (cores x LLC size x DRAM bank
 * occupancy) grid and reports, per point, how much slack recycling
 * survives contention: per-core IPC versus the same core running the
 * same workload solo on an interference-free hierarchy, alongside the
 * LLC's cross-core charges (MSHR merges, bank-wait cycles, back-
 * invalidations).
 *
 *   bench_proc [fast] [--max-ops N] [--mix A,B,...]
 *              [--core small|medium|big] [--mode baseline|redsoc|mos]
 *
 * Human-readable table goes to stderr; a JSON array of every grid
 * point goes to stdout for scripted tracking. Every simulated point
 * is deterministic, so two invocations print byte-identical JSON
 * (modulo the wall-clock-free fields it deliberately sticks to).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "sim/driver.h"

using namespace redsoc;

namespace {

std::vector<std::string>
splitMix(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : spec) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    fatal_if(out.empty(), "empty --mix");
    return out;
}

SchedMode
parseMode(const std::string &text)
{
    if (text == "baseline")
        return SchedMode::Baseline;
    if (text == "redsoc")
        return SchedMode::ReDSOC;
    if (text == "mos")
        return SchedMode::MOS;
    fatal("unknown mode '", text, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    SeqNum max_ops = 500'000;
    std::string mix_spec = "crc,act";
    std::string core_name = "big";
    SchedMode mode = SchedMode::ReDSOC;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "fast") {
            fast = true;
        } else if (arg == "--max-ops" && i + 1 < argc) {
            max_ops = static_cast<SeqNum>(std::atoll(argv[++i]));
        } else if (arg == "--mix" && i + 1 < argc) {
            mix_spec = argv[++i];
        } else if (arg == "--core" && i + 1 < argc) {
            core_name = argv[++i];
        } else if (arg == "--mode" && i + 1 < argc) {
            mode = parseMode(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [fast] [--max-ops N] "
                         "[--mix A,B,...] [--core NAME] [--mode MODE]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::string> mix = splitMix(mix_spec);
    const CoreConfig core_cfg = configFor(core_name, mode);

    const std::vector<unsigned> core_counts =
        fast ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4};
    const std::vector<u64> llc_kb =
        fast ? std::vector<u64>{2048} : std::vector<u64>{512, 2048};
    const std::vector<Cycle> occupancies =
        fast ? std::vector<Cycle>{0, 16} : std::vector<Cycle>{0, 16, 64};

    SimDriver driver(max_ops);

    // Solo references: each workload alone on a private hierarchy.
    std::vector<Cycle> solo_cycles(mix.size(), 0);
    for (size_t i = 0; i < mix.size(); ++i)
        solo_cycles[i] = driver.run(mix[i], core_cfg).cycles;

    struct Row
    {
        unsigned cores;
        u64 llc_kb;
        Cycle occ;
        double worst_slowdown; ///< max over cores of cycles/solo
        u64 merges;
        u64 bank_waits;
        u64 back_invals;
    };
    std::vector<Row> rows;

    Table table({"cores", "llc-kb", "bank-occ", "worst-slowdown",
                 "merges", "bank-wait", "back-inv"});
    for (unsigned cores : core_counts) {
        for (u64 kb : llc_kb) {
            for (Cycle occ : occupancies) {
                ProcConfig pcfg;
                pcfg.num_cores = cores;
                pcfg.core = core_cfg;
                pcfg.llc.size_bytes = kb * 1024;
                pcfg.llc.line_bytes = core_cfg.memory.l1.line_bytes;
                pcfg.dram.bank_occupancy = occ;

                const ProcStats &st = driver.runProc(mix, pcfg);
                Row row{cores, kb, occ, 0.0, 0, 0, 0};
                for (size_t i = 0; i < st.cores.size(); ++i) {
                    const Cycle solo = solo_cycles[i % mix.size()];
                    if (solo != 0) {
                        const double slow =
                            asDouble(st.cores[i].cycles) /
                            asDouble(solo);
                        row.worst_slowdown =
                            std::max(row.worst_slowdown, slow);
                    }
                }
                for (const LlcCoreStats &cs : st.llc.per_core) {
                    row.merges += cs.mshr_merges;
                    row.bank_waits += cs.bank_wait_cycles;
                    row.back_invals += cs.back_invalidations;
                }
                table.addRow({std::to_string(row.cores),
                              std::to_string(row.llc_kb),
                              std::to_string(row.occ),
                              Table::num(row.worst_slowdown, 3),
                              std::to_string(row.merges),
                              std::to_string(row.bank_waits),
                              std::to_string(row.back_invals)});
                rows.push_back(row);
            }
        }
    }

    std::fprintf(stderr,
                 "=== bench_proc (mix %s, %s/%s, max_ops=%llu) ===\n%s",
                 mix_spec.c_str(), core_name.c_str(),
                 schedModeName(mode),
                 static_cast<unsigned long long>(max_ops),
                 table.render().c_str());

    std::printf("[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf("  {\"cores\": %u, \"llc_kb\": %llu, "
                    "\"bank_occupancy\": %llu, "
                    "\"worst_slowdown\": %.6f, \"mshr_merges\": %llu, "
                    "\"bank_wait_cycles\": %llu, "
                    "\"back_invalidations\": %llu}%s\n",
                    r.cores, static_cast<unsigned long long>(r.llc_kb),
                    static_cast<unsigned long long>(r.occ),
                    r.worst_slowdown,
                    static_cast<unsigned long long>(r.merges),
                    static_cast<unsigned long long>(r.bank_waits),
                    static_cast<unsigned long long>(r.back_invals),
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");
    return 0;
}

/**
 * @file
 * redsoc_sim: command-line front end to the simulator.
 *
 *   redsoc_sim [--workload NAME | --list] [--core small|medium|big]
 *              [--mode baseline|redsoc|mos] [--threshold N]
 *              [--precision BITS] [--dynamic-threshold]
 *              [--rs illustrative|operational] [--no-egpw] [--no-skew]
 *              [--pvt-derate X] [--max-ops N] [--kernel scan|event]
 *              [--cores N] [--mix A,B,...] [--llc-kb N]
 *              [--dram-banks N] [--bank-occupancy N] [--share-addr]
 *              [--trace FILE] [--trace-format chrome|konata]
 *              [--trace-cap N] [--profile] [--stats] [--compare]
 *
 * --cores (or --mix) switches to the multi-core Processor: N copies
 * of the selected core configuration in front of one shared inclusive
 * LLC (--llc-kb, default the core's private L2 size) and a banked
 * DRAM backend (--dram-banks/--bank-occupancy). --mix names the
 * multi-programmed workloads comma-separated; core i runs entry
 * i mod len, so "--cores 4 --mix crc,act" alternates the two. Output
 * adds one line per core plus the LLC contention table. With --trace,
 * each core's pipeline events land in FILE.core<i>.
 *
 * --compare runs baseline and the selected mode and prints the
 * speedup; --stats dumps the full gem5-style statistics group;
 * --kernel selects the simulation kernel (results are bit-identical,
 * only host speed differs); --profile prints per-phase host timings.
 *
 * --trace (or the REDSOC_TRACE environment variable) records a
 * per-op pipeline event trace of the run and writes it to FILE:
 * Chrome trace_event JSON for chrome://tracing / Perfetto, or Konata
 * text for the Konata pipeline visualizer. The format follows
 * --trace-format when given, else the file extension (.json =>
 * chrome). --trace-cap bounds the event ring (default 1M events;
 * the ring keeps the tail of the run). A traced run also prints the
 * trace-derived metrics report (slack and latency distributions,
 * recycle-chain depths, EGPW outcomes).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/shutdown.h"
#include "sim/driver.h"
#include "sim/profile.h"
#include "trace/exporters.h"
#include "trace/metrics.h"

using namespace redsoc;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME | --list] [--core NAME] "
                 "[--mode MODE]\n"
                 "          [--threshold N] [--precision BITS] "
                 "[--dynamic-threshold]\n"
                 "          [--rs DESIGN] [--no-egpw] [--no-skew] "
                 "[--pvt-derate X]\n"
                 "          [--max-ops N] [--kernel scan|event] "
                 "[--profile] [--stats] [--compare]\n"
                 "          [--cores N] [--mix A,B,...] [--llc-kb N] "
                 "[--dram-banks N]\n"
                 "          [--bank-occupancy N] [--share-addr]\n"
                 "          [--trace FILE] [--trace-format "
                 "chrome|konata] [--trace-cap N]\n",
                 argv0);
}

std::vector<std::string>
splitMix(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : spec) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    fatal_if(out.empty(), "empty --mix");
    return out;
}

SchedMode
parseMode(const std::string &text)
{
    if (text == "baseline")
        return SchedMode::Baseline;
    if (text == "redsoc")
        return SchedMode::ReDSOC;
    if (text == "mos")
        return SchedMode::MOS;
    fatal("unknown mode '", text, "'");
}

} // namespace

int
main(int argc, char **argv)
try {
    // SIGINT/SIGTERM abort the simulation cooperatively
    // (ShutdownInterrupt below) so in-flight run-cache writes either
    // complete their atomic rename or never start.
    installGracefulShutdown(1);

    std::string workload = "crc";
    std::string core = "big";
    SchedMode mode = SchedMode::ReDSOC;
    bool want_stats = false;
    bool want_compare = false;
    bool list_only = false;
    SeqNum max_ops = 2'000'000;

    CoreConfig overrides = coreByName(core);
    bool threshold_set = false, precision_set = false;
    Tick threshold = 0;
    unsigned precision = 0;
    bool dynamic_threshold = false, no_egpw = false, no_skew = false;
    RsDesign rs_design = RsDesign::Operational;
    bool rs_set = false;
    double pvt_derate = 1.0;
    SchedKernel kernel = SchedKernel::Event;
    bool kernel_set = false;
    std::string trace_path;
    if (const char *env = std::getenv("REDSOC_TRACE"))
        trace_path = env;
    std::optional<TraceFormat> trace_format;
    size_t trace_cap = PipeTracer::kDefaultCapacity;

    unsigned num_cores = 1;
    bool proc_mode = false;
    std::string mix_spec;
    u64 llc_kb = 0; // 0 = the core's private L2 size
    unsigned dram_banks = 8;
    Cycle bank_occupancy = 16;
    bool share_addr = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--core") {
            core = next();
        } else if (arg == "--mode") {
            mode = parseMode(next());
        } else if (arg == "--threshold") {
            threshold = std::strtoull(next().c_str(), nullptr, 0);
            threshold_set = true;
        } else if (arg == "--precision") {
            precision =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
            precision_set = true;
        } else if (arg == "--dynamic-threshold") {
            dynamic_threshold = true;
        } else if (arg == "--rs") {
            const std::string d = next();
            rs_design = d == "illustrative" ? RsDesign::Illustrative
                                            : RsDesign::Operational;
            rs_set = true;
        } else if (arg == "--no-egpw") {
            no_egpw = true;
        } else if (arg == "--no-skew") {
            no_skew = true;
        } else if (arg == "--pvt-derate") {
            pvt_derate = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--max-ops") {
            max_ops = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--kernel") {
            const std::string k = next();
            if (k == "scan")
                kernel = SchedKernel::Scan;
            else if (k == "event")
                kernel = SchedKernel::Event;
            else
                fatal("unknown kernel '", k, "'");
            kernel_set = true;
        } else if (arg == "--cores") {
            num_cores =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
            proc_mode = true;
        } else if (arg == "--mix") {
            mix_spec = next();
            proc_mode = true;
        } else if (arg == "--llc-kb") {
            llc_kb = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--dram-banks") {
            dram_banks =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
        } else if (arg == "--bank-occupancy") {
            bank_occupancy = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--share-addr") {
            share_addr = true;
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--trace-format") {
            const std::string f = next();
            trace_format = parseTraceFormat(f);
            if (!trace_format)
                fatal("unknown trace format '", f,
                      "' (chrome or konata)");
        } else if (arg == "--trace-cap") {
            trace_cap = std::strtoull(next().c_str(), nullptr, 0);
            fatal_if(trace_cap == 0, "--trace-cap must be positive");
        } else if (arg == "--profile") {
            prof::setEnabled(true);
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--compare") {
            want_compare = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument '", arg, "'");
        }
    }

    if (list_only) {
        for (const Workload &w : allWorkloads())
            std::printf("%-10s %-8s %s\n", w.name.c_str(),
                        suiteName(w.suite), w.description.c_str());
        return 0;
    }

    auto make_config = [&](SchedMode m) {
        CoreConfig cfg = configFor(core, m);
        if (threshold_set)
            cfg.slack_threshold_ticks = threshold;
        if (precision_set)
            cfg.ci_precision_bits = precision;
        if (rs_set)
            cfg.rs_design = rs_design;
        cfg.dynamic_threshold = dynamic_threshold;
        cfg.egpw = !no_egpw;
        cfg.skewed_select = !no_skew;
        cfg.timing.pvt_derate = pvt_derate;
        if (kernel_set)
            cfg.sched_kernel = kernel;
        return cfg;
    };

    SimDriver driver(max_ops);

    if (proc_mode) {
        const std::vector<std::string> mix =
            splitMix(mix_spec.empty() ? workload : mix_spec);

        ProcConfig pcfg;
        pcfg.num_cores = num_cores;
        pcfg.core = make_config(mode);
        if (llc_kb != 0)
            pcfg.llc.size_bytes = llc_kb * 1024;
        else
            pcfg.llc.size_bytes = pcfg.core.memory.l2.size_bytes;
        pcfg.llc.line_bytes = pcfg.core.memory.l1.line_bytes;
        pcfg.dram.banks = dram_banks;
        pcfg.dram.bank_occupancy = bank_occupancy;
        pcfg.share_address_space = share_addr;

        ProcStats pstats;
        if (!trace_path.empty()) {
            // Traced multi-core run: uncached (like runTraced), one
            // tracer and one FILE.core<i> output per core.
            std::vector<const Trace *> traces;
            for (unsigned i = 0; i < pcfg.num_cores; ++i)
                traces.push_back(&driver.trace(mix[i % mix.size()]));
            Processor proc(pcfg);
            std::vector<std::unique_ptr<PipeTracer>> tracers;
            for (unsigned i = 0; i < pcfg.num_cores; ++i) {
                tracers.push_back(
                    std::make_unique<PipeTracer>(trace_cap));
                proc.setTracer(i, tracers.back().get());
            }
            pstats = proc.run(traces);
            for (unsigned i = 0; i < pcfg.num_cores; ++i) {
                const std::string path =
                    trace_path + ".core" + std::to_string(i);
                const TraceFormat fmt =
                    trace_format ? *trace_format
                                 : traceFormatForPath(trace_path);
                writeTraceFile(path, fmt, *tracers[i], *traces[i]);
                std::printf("trace core %u: %zu events -> %s\n", i,
                            tracers[i]->size(), path.c_str());
            }
        } else {
            pstats = driver.runProc(mix, pcfg);
        }

        for (size_t i = 0; i < pstats.cores.size(); ++i) {
            const CoreStats &cs = pstats.cores[i];
            std::printf("core %zu (%s): %llu cycles, IPC %.3f\n", i,
                        mix[i % mix.size()].c_str(),
                        static_cast<unsigned long long>(cs.cycles),
                        cs.ipc());
        }
        std::printf("%u-core %s/%s: %llu cycles to drain the mix\n",
                    pcfg.num_cores, core.c_str(), schedModeName(mode),
                    static_cast<unsigned long long>(pstats.cycles));
        std::fputs(renderContention(pstats).c_str(), stdout);
        if (want_stats) {
            for (size_t i = 0; i < pstats.cores.size(); ++i) {
                const std::string name = core + ".core" +
                                         std::to_string(i) + "." +
                                         schedModeName(mode);
                std::fputs(
                    toStatGroup(pstats.cores[i], name).dump().c_str(),
                    stdout);
            }
        }
        prof::report(std::cerr);
        return 0;
    }

    const Trace &trace = driver.trace(workload);
    std::printf("workload '%s': %llu dynamic ops\n", workload.c_str(),
                static_cast<unsigned long long>(trace.size()));

    const CoreConfig cfg = make_config(mode);
    CoreStats stats;
    if (!trace_path.empty()) {
        // A traced run bypasses the result caches (a cache hit has no
        // events) but produces byte-identical statistics.
        PipeTracer tracer(trace_cap);
        stats = driver.runTraced(workload, cfg, tracer);
        const TraceFormat fmt =
            trace_format ? *trace_format : traceFormatForPath(trace_path);
        writeTraceFile(trace_path, fmt, tracer, trace);
        std::printf("trace: %zu events (%llu dropped) -> %s [%s]\n",
                    tracer.size(),
                    static_cast<unsigned long long>(
                        tracer.droppedEvents()),
                    trace_path.c_str(),
                    fmt == TraceFormat::Chrome ? "chrome" : "konata");
        const TraceMetrics metrics = computeTraceMetrics(tracer, trace);
        if (metrics.droppedEvents() != 0) {
            std::fprintf(
                stderr,
                "WARNING: trace export TRUNCATED: the event ring "
                "wrapped and %llu events from the head of the run "
                "were dropped (kept the most recent %zu). Re-run "
                "with --trace-cap >= %llu for a complete trace.\n",
                static_cast<unsigned long long>(
                    metrics.droppedEvents()),
                tracer.size(),
                static_cast<unsigned long long>(
                    metrics.droppedEvents() + tracer.size()));
        }
        std::fputs(renderTraceMetrics(metrics).c_str(), stdout);
    } else {
        stats = driver.run(workload, cfg);
    }
    std::printf("%s/%s: %llu cycles, IPC %.3f\n", core.c_str(),
                schedModeName(mode),
                static_cast<unsigned long long>(stats.cycles),
                stats.ipc());
    std::printf("host: %.3f s simulation, %.2f simulated MIPS\n",
                stats.sim_seconds, stats.simMips());

    if (want_compare && mode != SchedMode::Baseline) {
        const CoreStats &base =
            driver.run(workload, make_config(SchedMode::Baseline));
        std::printf("baseline: %llu cycles -> speedup %.2f%%\n",
                    static_cast<unsigned long long>(base.cycles),
                    (ratioOf(base.cycles, stats.cycles) - 1.0) * 100.0);
    }

    if (want_stats) {
        const std::string name = core + "." + schedModeName(mode);
        std::fputs(toStatGroup(stats, name).dump().c_str(), stdout);
    }
    prof::report(std::cerr);
    return 0;
} catch (const ShutdownInterrupt &) {
    std::fprintf(stderr, "interrupted; partial results discarded\n");
    return 130;
}

/**
 * @file
 * bench_all: run every figure/table harness in sequence and report
 * per-harness and total wall-clock, plus the throughput totals of the
 * shared run cache. The harnesses are independent processes; pointing
 * them at one REDSOC_CACHE_DIR dedups the heavily overlapping
 * (workload x config) matrices across them — in particular the
 * per-suite threshold tuning sweep that every results harness re-runs
 * — while each process still fans its own matrix across the thread
 * pool.
 *
 *   bench_all [fast] [--bench-dir DIR] [--cache-dir DIR] [--no-cache]
 *             [--profile] [--trace-dir DIR] [--sched-baseline FILE]
 *             [--critpath] [--server SOCKET]
 *
 * "fast" is forwarded to every harness. The cache directory defaults
 * to ".redsoc-cache" in the current directory (created on demand);
 * --no-cache leaves REDSOC_CACHE_DIR untouched. --profile exports
 * REDSOC_PROFILE=1 so every harness (and the bench_sched kernel
 * microbenchmark, which always runs last) prints per-phase host
 * timings. --trace-dir exports REDSOC_TRACE_DIR so every harness
 * drops one pipeline trace per simulated point into DIR (note: the
 * run cache dedups points, so only cache misses simulate and trace;
 * combine with --no-cache for full coverage). --sched-baseline FILE
 * is forwarded to bench_sched as --baseline FILE, so the closing
 * kernel microbenchmark also diffs against the committed
 * BENCH_sched.json perf baseline (see tools/bench_sched.cc for the
 * calibrated-wall-clock contract); a diff failure fails bench_all.
 * --critpath appends the analytic what-if engine benchmark
 * (tools/bench_critpath) to the combined report, forwarding "fast";
 * its exactness or speedup gate failing fails bench_all.
 * --server SOCKET exports REDSOC_SWEEP_SERVER so every harness
 * offloads cache-missing points to a running redsoc_sweepd (see
 * DESIGN.md §15) instead of simulating in-process; results are
 * bit-identical either way, so this is purely a placement choice.
 *
 * SIGINT/SIGTERM stops launching new harnesses after the current one
 * exits (each harness installs its own graceful shutdown, so the
 * in-flight one drains its cache writes atomically) and exits 130.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/shutdown.h"
#include "common/table.h"
#include "sim/run_cache.h"

using namespace redsoc;

namespace {

/** The harness binaries, in presentation order (see bench/). */
const std::vector<std::string> kHarnesses = {
    "fig01_alu_times",     "fig02_ks_adder",
    "tab_slack_lut",       "tab1_configs",
    "tab2_kernels",        "fig10_op_mix",
    "fig11_seq_length",    "fig12_tag_mispred",
    "fig13_speedup",       "fig14_fu_stalls",
    "fig15_comparison",    "tab_width_predictor",
    "sweep_slack_precision", "sweep_slack_threshold",
    "sweep_pvt",           "ablation_mechanisms",
    "power_savings",
};

std::string
exeDir()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    std::string path(buf);
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::string
defaultBenchDir()
{
    // The build tree puts bench_all in tools/ and the harnesses in
    // bench/, siblings under the build root.
    return exeDir() + "/../bench";
}

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    bool use_cache = true;
    bool critpath = false;
    std::string bench_dir = defaultBenchDir();
    std::string cache_dir = ".redsoc-cache";
    std::string sched_baseline;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "fast") {
            fast = true;
        } else if (arg == "--bench-dir" && i + 1 < argc) {
            bench_dir = argv[++i];
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--no-cache") {
            use_cache = false;
        } else if (arg == "--profile") {
            ::setenv("REDSOC_PROFILE", "1", 1);
        } else if (arg == "--trace-dir" && i + 1 < argc) {
            ::setenv("REDSOC_TRACE_DIR", argv[++i], 1);
        } else if (arg == "--sched-baseline" && i + 1 < argc) {
            sched_baseline = argv[++i];
        } else if (arg == "--critpath") {
            critpath = true;
        } else if (arg == "--server" && i + 1 < argc) {
            ::setenv("REDSOC_SWEEP_SERVER", argv[++i], 1);
        } else {
            std::fprintf(stderr,
                         "usage: %s [fast] [--bench-dir DIR] "
                         "[--cache-dir DIR] [--no-cache] [--profile] "
                         "[--trace-dir DIR] [--sched-baseline FILE] "
                         "[--critpath] [--server SOCKET]\n",
                         argv[0]);
            return 2;
        }
    }

    installGracefulShutdown(1);

    if (use_cache) {
        // Don't override an explicit environment choice unless the
        // user also passed --cache-dir.
        const char *env = std::getenv("REDSOC_CACHE_DIR");
        if (env == nullptr || *env == '\0' ||
            cache_dir != ".redsoc-cache") {
            ::setenv("REDSOC_CACHE_DIR", cache_dir.c_str(), 1);
        } else {
            cache_dir = env;
        }
        std::fprintf(stderr, "[bench_all] run cache: %s\n",
                     cache_dir.c_str());
    }

    Table summary({"harness", "status", "seconds"});
    int failures = 0;
    bool interrupted = false;
    const auto t0 = std::chrono::steady_clock::now();
    for (const std::string &name : kHarnesses) {
        if (shutdownRequested()) {
            interrupted = true;
            break;
        }
        std::string cmd = "\"" + bench_dir + "/" + name + "\"";
        if (fast)
            cmd += " fast";
        std::printf("$ %s\n", cmd.c_str());
        std::fflush(stdout);
        const auto h0 = std::chrono::steady_clock::now();
        const int rc = std::system(cmd.c_str());
        const double secs = seconds(h0, std::chrono::steady_clock::now());
        if (rc != 0)
            ++failures;
        summary.addRow({name, rc == 0 ? "ok" : "FAIL",
                        Table::num(secs, 2)});
        std::printf("\n");
    }

    // The scheduler-kernel microbenchmark is a tool, not a figure
    // harness: it lives next to bench_all itself and always runs so
    // the simulator-throughput trend is part of every bench report.
    if (!interrupted) {
        std::string cmd = "\"" + exeDir() + "/bench_sched\"";
        if (fast)
            cmd += " fast";
        if (!sched_baseline.empty())
            cmd += " --baseline \"" + sched_baseline + "\"";
        cmd += " > /dev/null"; // JSON feed; the table goes to stderr
        std::printf("$ %s\n", cmd.c_str());
        std::fflush(stdout);
        const auto h0 = std::chrono::steady_clock::now();
        const int rc = std::system(cmd.c_str());
        const double secs = seconds(h0, std::chrono::steady_clock::now());
        if (rc != 0)
            ++failures;
        summary.addRow({"bench_sched", rc == 0 ? "ok" : "FAIL",
                        Table::num(secs, 2)});
        std::printf("\n");
    }

    // --critpath: the analytic what-if engine benchmark. Like
    // bench_sched it is a tool, not a figure harness; its JSON feed
    // goes to stdout on its own, so discard it here and keep the
    // stderr tables.
    if (critpath && !interrupted) {
        std::string cmd = "\"" + exeDir() + "/bench_critpath\"";
        if (fast)
            cmd += " fast";
        cmd += " > /dev/null";
        std::printf("$ %s\n", cmd.c_str());
        std::fflush(stdout);
        const auto h0 = std::chrono::steady_clock::now();
        const int rc = std::system(cmd.c_str());
        const double secs = seconds(h0, std::chrono::steady_clock::now());
        if (rc != 0)
            ++failures;
        summary.addRow({"bench_critpath", rc == 0 ? "ok" : "FAIL",
                        Table::num(secs, 2)});
        std::printf("\n");
    }
    const double total = seconds(t0, std::chrono::steady_clock::now());

    std::printf("=== bench_all summary ===\n%s\n",
                summary.render().c_str());
    std::printf("total wall-clock: %.2f s over %zu harnesses%s\n",
                total, kHarnesses.size(), fast ? " (fast mode)" : "");

    if (use_cache) {
        const RunCache::Totals totals = RunCache::scan(cache_dir);
        if (totals.runs > 0) {
            std::printf("run cache: %llu distinct points, %llu "
                        "committed ops, %.2f core-seconds simulated "
                        "(%.2f simulated MIPS)\n",
                        static_cast<unsigned long long>(totals.runs),
                        static_cast<unsigned long long>(
                            totals.committed_ops),
                        totals.sim_seconds,
                        totals.sim_seconds > 0.0
                            ? asDouble(totals.committed_ops) /
                                  totals.sim_seconds / 1e6
                            : 0.0);
        }
    }
    if (interrupted) {
        std::fprintf(stderr, "[bench_all] interrupted; remaining "
                             "harnesses skipped\n");
        return 130;
    }
    return failures == 0 ? 0 : 1;
}

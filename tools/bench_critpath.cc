/**
 * @file
 * bench_critpath: analytic what-if engine benchmark. For each
 * workload, one traced reference run (big-core ReDSOC at CI precision
 * 4, so the CI 1..4 what-if ladder refines a real sub-cycle schedule)
 * builds the critpath dependence graph through the streaming
 * DepGraphBuilder sink; the harness then
 *
 *   1. gates on exactness: the base-model replay of the graph must
 *      reproduce the simulator's committed cycle count bit-exactly
 *      (exit 1 on divergence — this is the correctness contract of
 *      the whole subsystem);
 *   2. times an analytic what-if sweep of 64 machine models (CI
 *      precision x EGPW x FU scaling, plus the ideal-recycle and
 *      no-recycle bounds) as one batched Retimer::retimeAll() pass
 *      over the frozen graph; and
 *   3. re-simulates the same sweep points as cold, single-threaded
 *      OooCore runs of the mapped CoreConfig, reporting per-model
 *      analytic vs simulated cycle counts and the wall-clock ratio
 *      (re-simulation seconds / analytic sweep seconds).
 *
 * The run fails (exit 1) if any base replay diverges or if the
 * geomean sweep speedup across workloads falls below --min-speedup
 * (default 50).
 *
 *   bench_critpath [fast] [--max-ops N] [--reps N] [--min-speedup X]
 *
 * Human-readable tables go to stderr; one JSON object per line goes
 * to stdout (per-model points plus a per-workload summary), for
 * scripted tracking — the committed BENCH_critpath.json is this
 * output.
 *
 * Methodology notes:
 *  - The analytic sweep is timed as best-of---reps over the batched
 *    all-models pass; per-model cycle results must be bit-identical
 *    across repetitions (and test_critpath cross-checks the batched
 *    pass against per-model retime() calls).
 *  - Graph construction is *not* part of the timed sweep: the graph
 *    is a per-trace artifact built once while tracing (its cost is
 *    reported separately as trace_run_seconds).
 *  - Re-simulated points run the traced config's (default) event
 *    kernel — the simulator's fastest path, not a strawman.
 *  - The slack threshold is held at the same cycle fraction (3/4)
 *    across CI precisions so re-simulated points change one knob at
 *    a time.
 *  - The ideal-recycle and no-recycle bounds have no exact simulator
 *    equivalent; their re-simulation proxies (max-precision ReDSOC
 *    and the conventional baseline) are flagged in the JSON and
 *    excluded from the cycle-delta table.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "core/ooo_core.h"
#include "critpath/dep_graph_builder.h"
#include "critpath/retimer.h"
#include "trace/pipe_tracer.h"
#include "workloads/registry.h"

using namespace redsoc;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** CI precision of the traced reference run (tpc = 16). */
constexpr unsigned kTracedCiBits = 4;

/** Slack threshold at 3/4 of a cycle for a given CI precision, the
 *  same fraction as the repo default (6 ticks at precision 3). */
Tick
thresholdForBits(unsigned bits)
{
    const Tick tpc = Tick{1} << bits;
    const Tick t = tpc * 3 / 4;
    return t == 0 ? 1 : t;
}

CoreConfig
tracedConfig()
{
    CoreConfig cfg = bigCore();
    cfg.mode = SchedMode::ReDSOC;
    cfg.ci_precision_bits = kTracedCiBits;
    cfg.slack_threshold_ticks = thresholdForBits(kTracedCiBits);
    return cfg;
}

/** One sweep point: a what-if model plus the CoreConfig a simulator
 *  sweep would run for the same question. */
struct SweepPoint
{
    WhatIfModel model;
    CoreConfig sim_cfg;
    /** False when the model has no exact simulator knob (bounds);
     *  sim_cfg is then a labelled proxy and the cycle delta is not
     *  comparable. */
    bool representable = true;
};

void
scaleUnits(CoreConfig &cfg, double scale)
{
    auto apply = [scale](unsigned &units) {
        const double scaled = units * scale;
        units = scaled < 1.0 ? 1u : static_cast<unsigned>(scaled);
    };
    apply(cfg.alu_units);
    apply(cfg.simd_units);
    apply(cfg.fp_units);
    apply(cfg.mem_ports);
}

std::vector<SweepPoint>
buildSweep()
{
    std::vector<SweepPoint> sweep;
    auto whatIf = [](const std::string &name) {
        WhatIfModel m;
        m.name = name;
        m.exact_replay = false;
        return m;
    };
    auto fuTag = [](double fu) {
        return fu == 0.25   ? std::string("_fuquarter")
               : fu == 0.5  ? std::string("_fuhalf")
               : fu == 2.0  ? std::string("_fu2")
               : fu == 4.0  ? std::string("_fu4")
               : fu == 8.0  ? std::string("_fu8")
               : fu == 16.0 ? std::string("_fu16")
                            : std::string();
    };
    // 4 CI x 2 EGPW x 7 FU = 56 grid points plus 2 bounds x 4 FU = 64
    // total, the retimeAll lane cap (the pass pads to 64 lanes either
    // way, so the extra points are marginally free).
    constexpr double kFuLadder[] = {0.25, 0.5, 1.0, 2.0,
                                    4.0,  8.0, 16.0};
    constexpr double kFuBoundsLadder[] = {0.5, 1.0, 2.0, 4.0};
    // The CI x EGPW x FU grid: every combination is an exact
    // CoreConfig, so analytic and simulated cycles are comparable.
    for (unsigned ci = 1; ci <= kTracedCiBits; ++ci) {
        for (bool egpw : {true, false}) {
            for (double fu : kFuLadder) {
                SweepPoint p;
                p.model = whatIf("ci" + std::to_string(ci) +
                                 (egpw ? "" : "_noegpw") + fuTag(fu));
                p.model.ci_bits = ci;
                p.model.egpw = egpw;
                p.model.fu_scale = fu;
                p.sim_cfg = tracedConfig();
                p.sim_cfg.ci_precision_bits = ci;
                p.sim_cfg.slack_threshold_ticks = thresholdForBits(ci);
                p.sim_cfg.egpw = egpw;
                scaleUnits(p.sim_cfg, fu);
                sweep.push_back(std::move(p));
            }
        }
    }
    // Bounds: no exact simulator knob; the re-simulated point is the
    // nearest real machine (flagged non-representable). Both bounds
    // get a coarser FU ladder of their own so the total lands on the
    // 64-model lane cap.
    for (double fu : kFuBoundsLadder) {
        SweepPoint p;
        p.model = whatIf("ideal_recycle" + fuTag(fu));
        p.model.zero_latency_recycle = true;
        p.model.fu_scale = fu;
        p.sim_cfg = tracedConfig();
        p.sim_cfg.ci_precision_bits = 8;
        p.sim_cfg.slack_threshold_ticks = thresholdForBits(8);
        scaleUnits(p.sim_cfg, fu);
        p.representable = false;
        sweep.push_back(std::move(p));
    }
    for (double fu : kFuBoundsLadder) {
        SweepPoint p;
        p.model = whatIf("no_recycle" + fuTag(fu));
        p.model.no_recycle = true;
        p.model.fu_scale = fu;
        p.sim_cfg = tracedConfig();
        p.sim_cfg.mode = SchedMode::Baseline;
        scaleUnits(p.sim_cfg, fu);
        p.representable = false;
        sweep.push_back(std::move(p));
    }
    return sweep;
}

struct ModelResult
{
    std::string model;
    Cycle analytic_cycles = 0;
    Cycle sim_cycles = 0;
    double sim_seconds = 0.0;
    bool representable = true;
};

struct WorkloadResult
{
    std::string workload;
    u64 ops = 0;
    u64 edges = 0;
    Cycle traced_cycles = 0;
    double trace_run_seconds = 0.0;
    double sweep_seconds = 0.0;
    double resim_seconds = 0.0;
    std::vector<ModelResult> models;

    double speedup() const
    {
        return sweep_seconds <= 0.0 ? 0.0
                                    : resim_seconds / sweep_seconds;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    SeqNum max_ops = 2'000'000;
    unsigned reps = 5;
    double min_speedup = 50.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "fast") {
            fast = true;
        } else if (arg == "--max-ops" && i + 1 < argc) {
            max_ops = static_cast<SeqNum>(std::atoll(argv[++i]));
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
            if (reps == 0)
                reps = 1;
        } else if (arg == "--min-speedup" && i + 1 < argc) {
            min_speedup = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [fast] [--max-ops N] [--reps N] "
                         "[--min-speedup X]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::string> workloads =
        fast ? std::vector<std::string>{"crc", "act"}
             : std::vector<std::string>{"crc", "gsm", "act", "conv"};
    const std::vector<SweepPoint> sweep = buildSweep();
    const CoreConfig traced_cfg = tracedConfig();

    bool gate_failed = false;
    std::vector<WorkloadResult> results;

    for (const std::string &workload : workloads) {
        WorkloadResult wr;
        wr.workload = workload;
        const Trace trace = traceWorkload(workload, max_ops);

        // Traced reference run: the graph is built on the fly by the
        // streaming sink, so the ring capacity does not bound it.
        auto t0 = std::chrono::steady_clock::now();
        DepGraphBuilder builder(trace, traced_cfg);
        PipeTracer tracer(1u << 12);
        tracer.setSink(&builder);
        OooCore core(traced_cfg);
        core.setTracer(&tracer);
        const CoreStats stats = core.run(trace);
        const DepGraph graph = builder.finalize();
        wr.trace_run_seconds = secondsSince(t0);
        wr.ops = graph.num_ops;
        wr.edges = graph.numEdges();
        wr.traced_cycles = stats.cycles;

        Retimer retimer(graph);

        // Gate 1: base-model replay must be bit-exact.
        const RetimeResult base = retimer.retime(WhatIfModel{});
        if (base.cycles != stats.cycles ||
            base.ops != stats.committed) {
            std::fprintf(
                stderr,
                "bench_critpath: EXACTNESS FAILURE on %s: base replay "
                "%llu cycles / %llu ops vs simulator %llu / %llu\n",
                workload.c_str(),
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(base.ops),
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.committed));
            return 1;
        }

        // Optional diagnostic: per-model critical-path composition.
        if (std::getenv("REDSOC_CRITPATH_PATH")) {
            std::array<u64, static_cast<size_t>(EdgeKind::NUM)> hist{};
            for (const Edge &e : graph.edges)
                ++hist[static_cast<size_t>(e.kind)];
            std::fprintf(stderr, "  [edges]");
            for (size_t k = 0; k < hist.size(); ++k)
                if (hist[k] != 0)
                    std::fprintf(stderr, " %s=%llu",
                                 edgeKindName(static_cast<EdgeKind>(k)),
                                 static_cast<unsigned long long>(hist[k]));
            u64 n_load = 0, n_store = 0, n_transp = 0;
            for (u32 i = 0; i < graph.num_ops; ++i) {
                n_load += (graph.flags[i] & kOpLoad) != 0;
                n_store += (graph.flags[i] & kOpStore) != 0;
                n_transp += (graph.flags[i] & kOpTransparent) != 0;
            }
            std::fprintf(stderr,
                         " | loads=%llu stores=%llu transparent=%llu "
                         "dropped_mem=%llu\n",
                         static_cast<unsigned long long>(n_load),
                         static_cast<unsigned long long>(n_store),
                         static_cast<unsigned long long>(n_transp),
                         static_cast<unsigned long long>(
                             graph.dropped_nonmonotone_mem));
            auto dumpPath = [&](const RetimeResult &rr) {
                std::fprintf(stderr, "  [path] %-14s %8llu cycles, len %llu:",
                             rr.model.c_str(),
                             static_cast<unsigned long long>(rr.cycles),
                             static_cast<unsigned long long>(rr.path_len));
                for (size_t k = 0; k < rr.path_kinds.size(); ++k)
                    if (rr.path_kinds[k] != 0)
                        std::fprintf(stderr, " %s=%llu",
                                     edgeKindName(static_cast<EdgeKind>(k)),
                                     static_cast<unsigned long long>(
                                         rr.path_kinds[k]));
                std::fprintf(stderr, "\n");
            };
            dumpPath(base);
            for (const SweepPoint &sp : sweep)
                dumpPath(retimer.retime(sp.model));
        }

        // Timed analytic sweep: one batched retimeAll() pass settles
        // all models at once; best of --reps, cycle results
        // bit-identical across repetitions (and cross-checked against
        // per-model retime() passes by test_critpath).
        std::vector<WhatIfModel> sweep_models;
        sweep_models.reserve(sweep.size());
        for (const SweepPoint &sp : sweep)
            sweep_models.push_back(sp.model);
        std::vector<Cycle> analytic(sweep.size(), 0);
        for (unsigned r = 0; r < reps; ++r) {
            t0 = std::chrono::steady_clock::now();
            const std::vector<RetimeResult> batched =
                retimer.retimeAll(sweep_models);
            const double secs = secondsSince(t0);
            std::vector<Cycle> pass(sweep.size(), 0);
            for (size_t m = 0; m < sweep.size(); ++m)
                pass[m] = batched[m].cycles;
            if (r == 0) {
                analytic = pass;
                wr.sweep_seconds = secs;
            } else {
                fatal_if(pass != analytic,
                         "bench_critpath: nondeterministic analytic "
                         "sweep on ",
                         workload);
                wr.sweep_seconds = std::min(wr.sweep_seconds, secs);
            }
        }

        // Re-simulate the same sweep points: cold single-threaded
        // runs, the cost a configuration sweep actually pays.
        for (size_t m = 0; m < sweep.size(); ++m) {
            ModelResult mr;
            mr.model = sweep[m].model.name;
            mr.analytic_cycles = analytic[m];
            mr.representable = sweep[m].representable;
            t0 = std::chrono::steady_clock::now();
            OooCore sim_core(sweep[m].sim_cfg);
            const CoreStats sim_stats = sim_core.run(trace);
            mr.sim_seconds = secondsSince(t0);
            mr.sim_cycles = sim_stats.cycles;
            wr.resim_seconds += mr.sim_seconds;
            wr.models.push_back(std::move(mr));
        }

        results.push_back(std::move(wr));
    }

    // Per-model cycle comparison (representable points only).
    Table detail({"workload", "model", "analytic", "simulated",
                  "delta%", "sim ms"});
    for (const WorkloadResult &wr : results) {
        for (const ModelResult &mr : wr.models) {
            if (!mr.representable)
                continue;
            const double delta =
                mr.sim_cycles == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(mr.analytic_cycles) -
                           static_cast<double>(mr.sim_cycles)) /
                          static_cast<double>(mr.sim_cycles);
            detail.addRow({wr.workload, mr.model,
                           std::to_string(mr.analytic_cycles),
                           std::to_string(mr.sim_cycles),
                           Table::num(delta, 2),
                           Table::num(mr.sim_seconds * 1e3, 1)});
        }
    }
    std::fprintf(stderr,
                 "=== bench_critpath (analytic what-if vs "
                 "re-simulation) ===\n%s\n",
                 detail.render().c_str());

    Table summary({"workload", "ops", "edges", "sweep ms", "resim s",
                   "speedup"});
    double log_sum = 0.0;
    for (const WorkloadResult &wr : results) {
        summary.addRow({wr.workload, std::to_string(wr.ops),
                        std::to_string(wr.edges),
                        Table::num(wr.sweep_seconds * 1e3, 2),
                        Table::num(wr.resim_seconds, 3),
                        Table::num(wr.speedup(), 1)});
        log_sum += std::log(wr.speedup());
    }
    const double geomean =
        results.empty()
            ? 0.0
            : std::exp(log_sum / static_cast<double>(results.size()));
    std::fprintf(stderr, "%s\n", summary.render().c_str());
    // Gate on the geomean, the headline the bench reports: per-workload
    // ratios are still printed above, but a hard per-workload gate on a
    // shared machine trips on host noise rather than regressions.
    if (geomean < min_speedup) {
        std::fprintf(stderr,
                     "bench_critpath: SPEEDUP FAILURE: geomean sweep "
                     "speedup %.1fx below gate %.1fx\n",
                     geomean, min_speedup);
        gate_failed = true;
    }
    std::fprintf(stderr,
                 "geomean sweep speedup: %.1fx over %zu workloads x "
                 "%zu models (gate %.1fx, best of %u rep%s%s)\n",
                 geomean, results.size(), sweep.size(), min_speedup,
                 reps, reps == 1 ? "" : "s",
                 fast ? ", fast mode" : "");

    // JSON to stdout, one object per line (the committed
    // BENCH_critpath.json baseline is this output).
    std::printf("[\n");
    bool first = true;
    for (const WorkloadResult &wr : results) {
        for (const ModelResult &mr : wr.models) {
            std::printf("%s  {\"workload\": \"%s\", \"model\": \"%s\", "
                        "\"analytic_cycles\": %llu, "
                        "\"sim_cycles\": %llu, "
                        "\"representable\": %s, "
                        "\"sim_seconds\": %.6f}",
                        first ? "" : ",\n", wr.workload.c_str(),
                        mr.model.c_str(),
                        static_cast<unsigned long long>(
                            mr.analytic_cycles),
                        static_cast<unsigned long long>(mr.sim_cycles),
                        mr.representable ? "true" : "false",
                        mr.sim_seconds);
            first = false;
        }
        std::printf(",\n  {\"workload\": \"%s\", \"model\": "
                    "\"__summary__\", \"ops\": %llu, \"edges\": %llu, "
                    "\"traced_cycles\": %llu, "
                    "\"trace_run_seconds\": %.6f, "
                    "\"sweep_seconds\": %.6f, "
                    "\"resim_seconds\": %.6f, "
                    "\"speedup\": %.1f}",
                    wr.workload.c_str(),
                    static_cast<unsigned long long>(wr.ops),
                    static_cast<unsigned long long>(wr.edges),
                    static_cast<unsigned long long>(wr.traced_cycles),
                    wr.trace_run_seconds, wr.sweep_seconds,
                    wr.resim_seconds, wr.speedup());
    }
    std::printf("\n]\n");

    return gate_failed ? 1 : 0;
}

/**
 * @file
 * redsoc_sweepd: the sweep-server daemon. Serves simulation points
 * over an AF_UNIX socket (newline-delimited JSON; see DESIGN.md §15)
 * so many client processes share one hot cache of results.
 *
 *   redsoc_sweepd --socket PATH [--cache-dir DIR] [--shards N]
 *                 [--shard-capacity N] [--queue-capacity N]
 *                 [--workers N] [--retry-after-ms N]
 *                 [--stats-json FILE] [--max-ops-default N]
 *
 * Shutdown protocol (installGracefulShutdown(2)):
 *   1st SIGINT/SIGTERM  stop accepting submissions, drain the job
 *                       queue (in-flight and queued points finish and
 *                       publish/persist normally), then exit;
 *   2nd signal          discard queued jobs (their tickets complete
 *                       with an error) and abort in-flight
 *                       simulations; nothing half-done is ever
 *                       written — the run-cache publish is an atomic
 *                       rename that aborted points never reach.
 * A client "shutdown" op behaves like one SIGTERM.
 *
 * --stats-json dumps the final server counters to FILE on exit (the
 * CI server job uploads it as an artifact).
 */

#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/shutdown.h"
#include "server/sweep_server.h"

using namespace redsoc;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--cache-dir DIR] [--shards N]\n"
        "          [--shard-capacity N] [--queue-capacity N] "
        "[--workers N]\n"
        "          [--retry-after-ms N] [--stats-json FILE]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepServerOptions opts;
    std::string stats_json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opts.socket_path = next();
        } else if (arg == "--cache-dir") {
            opts.cache_dir = next();
        } else if (arg == "--shards") {
            opts.shards = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--shard-capacity") {
            opts.shard_capacity =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--queue-capacity") {
            opts.queue_capacity =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--workers") {
            opts.workers = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--retry-after-ms") {
            opts.retry_after_ms = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (opts.socket_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    // The daemon must never offload to a daemon — especially not to
    // itself through an inherited environment.
    ::unsetenv("REDSOC_SWEEP_SERVER");

    // Two-stage shutdown: first signal drains, second aborts
    // in-flight simulations (ShutdownInterrupt out of OooCore::run).
    installGracefulShutdown(2);

    SweepServer server(opts);
    if (!server.start()) {
        std::fprintf(stderr, "[redsoc_sweepd] cannot serve on '%s'\n",
                     opts.socket_path.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "[redsoc_sweepd] serving on %s (%u shards, queue %zu"
                 "%s%s)\n",
                 opts.socket_path.c_str(),
                 opts.shards == 0 ? 1 : opts.shards,
                 opts.queue_capacity,
                 opts.cache_dir.empty() ? "" : ", cache ",
                 opts.cache_dir.c_str());

    // Wait for a signal or a client shutdown op. The self-pipe makes
    // a signal wake the poll immediately; the timeout covers the
    // shutdown-op path (cheap flag check).
    for (;;) {
        if (shutdownRequested() || server.shutdownOpReceived())
            break;
        pollfd pfd = {};
        pfd.fd = shutdownWakeFd();
        pfd.events = POLLIN;
        if (pfd.fd >= 0)
            ::poll(&pfd, 1, 250);
        else
            ::usleep(250 * 1000);
    }

    // Drain stage: no new submissions; let the backlog finish unless
    // a second signal asks us to discard it.
    std::fprintf(stderr, "[redsoc_sweepd] draining job queue...\n");
    server.closeQueue();
    size_t discarded = 0;
    while (!server.queueIdle()) {
        if (shutdownSignalCount() >= 2) {
            discarded = server.discardPendingJobs();
            // In-flight simulations see simAbortRequested() and throw;
            // their claims fail, their tickets complete with errors.
            server.waitQueueIdleFor(10'000);
            break;
        }
        server.waitQueueIdleFor(200);
    }
    if (discarded > 0)
        std::fprintf(stderr,
                     "[redsoc_sweepd] discarded %zu queued job(s)\n",
                     discarded);

    const std::string stats = server.statsJson();
    server.stop();
    if (!stats_json_path.empty()) {
        std::ofstream out(stats_json_path,
                          std::ios::binary | std::ios::trunc);
        out << stats << '\n';
    }
    std::fprintf(stderr, "[redsoc_sweepd] exit: %s\n", stats.c_str());
    return 0;
}

/**
 * @file
 * Memory-hierarchy tests: set-associative tags + LRU, write-back
 * bookkeeping, the stride prefetcher, and end-to-end latencies.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/hierarchy.h"

namespace redsoc {
namespace {

CacheConfig
tinyCache()
{
    return CacheConfig{"tiny", 1024, 2, 64}; // 8 sets x 2 ways
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103F, false).hit); // same line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyCache());
    // Three lines mapping to the same set (set stride = 8 * 64).
    const Addr a = 0x0000, b = 0x2000, d = 0x4000;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);  // a is now MRU
    c.access(d, false);  // evicts b
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c(tinyCache());
    c.access(0x0000, true); // dirty
    c.access(0x2000, false);
    const auto result = c.access(0x4000, false); // evicts dirty 0x0000
    EXPECT_TRUE(result.had_victim);
    EXPECT_TRUE(result.writeback);
    EXPECT_EQ(result.victim_line, 0x0000u);
}

TEST(Cache, InsertDoesNotPerturbDemandStats)
{
    Cache c(tinyCache());
    EXPECT_TRUE(c.insert(0x8000).allocated);
    EXPECT_FALSE(c.insert(0x8000).allocated); // already present
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.contains(0x8000));
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(tinyCache());
    c.access(0x1000, true);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
}

TEST(Cache, ConfigValidation)
{
    CacheConfig bad{"bad", 1000, 3, 64};
    EXPECT_THROW(Cache{bad}, std::logic_error);
}

TEST(Prefetcher, DetectsConstantStride)
{
    StridePrefetcher pf;
    std::vector<Addr> fills;
    for (int i = 0; i < 6; ++i)
        fills = pf.observe(7, 0x1000 + 64u * i);
    ASSERT_EQ(fills.size(), 2u); // degree 2
    EXPECT_EQ(fills[0], 0x1000u + 64 * 6);
    EXPECT_EQ(fills[1], 0x1000u + 64 * 7);
}

TEST(Prefetcher, NoFillsForRandomPattern)
{
    StridePrefetcher pf;
    Rng rng(3);
    u64 total = 0;
    for (int i = 0; i < 100; ++i)
        total += pf.observe(9, rng.next() & 0xFFFFF).size();
    EXPECT_EQ(total, 0u);
}

TEST(Prefetcher, NegativeStrideWorks)
{
    StridePrefetcher pf;
    std::vector<Addr> fills;
    for (int i = 0; i < 6; ++i)
        fills = pf.observe(3, 0x10000 - 128u * i);
    ASSERT_FALSE(fills.empty());
    EXPECT_EQ(fills[0], 0x10000u - 128 * 6);
}

TEST(Hierarchy, LatenciesStackByLevel)
{
    HierarchyConfig cfg;
    cfg.prefetch = false;
    MemHierarchy mem(cfg);

    const auto cold = mem.access(1, 0x100000, false);
    EXPECT_FALSE(cold.l1_hit);
    EXPECT_FALSE(cold.l2_hit);
    EXPECT_EQ(cold.latency,
              cfg.l1_latency + cfg.l2_latency + cfg.mem_latency);

    const auto warm = mem.access(1, 0x100000, false);
    EXPECT_TRUE(warm.l1_hit);
    EXPECT_EQ(warm.latency, cfg.l1_latency);
}

TEST(Hierarchy, L2HitCostsNoDram)
{
    HierarchyConfig cfg;
    cfg.prefetch = false;
    cfg.l1.size_bytes = 1024; // tiny L1 so we can evict easily
    cfg.l1.assoc = 2;
    MemHierarchy mem(cfg);

    mem.access(1, 0x0000, false); // into L1+L2
    // Blow the L1 set with conflicting lines.
    mem.access(1, 0x2000, false);
    mem.access(1, 0x4000, false);
    const auto result = mem.access(1, 0x0000, false);
    EXPECT_FALSE(result.l1_hit);
    EXPECT_TRUE(result.l2_hit);
    EXPECT_EQ(result.latency, cfg.l1_latency + cfg.l2_latency);
}

TEST(Hierarchy, StoresAbsorbMissLatency)
{
    HierarchyConfig cfg;
    cfg.prefetch = false;
    MemHierarchy mem(cfg);
    const auto st = mem.access(2, 0x7000, true);
    EXPECT_FALSE(st.l1_hit);
    EXPECT_EQ(st.latency, cfg.l1_latency); // write buffer absorbs
    // The allocated line now serves loads.
    EXPECT_TRUE(mem.access(2, 0x7000, false).l1_hit);
}

TEST(Hierarchy, PrefetchHidesStreamingDramLatency)
{
    HierarchyConfig with;
    with.prefetch = true;
    HierarchyConfig without = with;
    without.prefetch = false;

    auto total_latency = [](HierarchyConfig cfg) {
        MemHierarchy mem(cfg);
        Cycle total = 0;
        for (int i = 0; i < 256; ++i)
            total += mem.access(11, 0x40000 + 64u * i, false).latency;
        return total;
    };
    // Default fills land in L2: streams still miss L1 but stop
    // paying DRAM.
    EXPECT_LT(total_latency(with), total_latency(without) / 2);

    HierarchyConfig timely = with;
    timely.prefetch_fill_l1 = true;
    auto l1_misses = [](HierarchyConfig cfg) {
        MemHierarchy mem(cfg);
        u64 misses = 0;
        for (int i = 0; i < 256; ++i)
            if (!mem.access(11, 0x40000 + 64u * i, false).l1_hit)
                ++misses;
        return misses;
    };
    // A perfectly timely prefetcher also removes the L1 misses.
    EXPECT_LT(l1_misses(timely), l1_misses(with) / 2);
}

TEST(Hierarchy, OffcoreScalingInflatesL2AndDram)
{
    HierarchyConfig cfg;
    cfg.prefetch = false;
    cfg.offcore_latency_scale = 1.5;
    MemHierarchy mem(cfg);
    const auto cold = mem.access(1, 0x9000, false);
    EXPECT_EQ(cold.latency,
              cfg.l1_latency + Cycle(asDouble(cfg.l2_latency) * 1.5) +
                  Cycle(asDouble(cfg.mem_latency) * 1.5));
    // L1 runs at core speed: unscaled.
    EXPECT_EQ(mem.access(1, 0x9000, false).latency, cfg.l1_latency);
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Predictor tests: the Loh resetting-counter width predictor, the
 * last-arrival predictor, and the gshare branch predictor + RAS.
 */

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "predictors/branch_predictor.h"
#include "predictors/last_arrival_predictor.h"
#include "predictors/width_predictor.h"

namespace redsoc {
namespace {

TEST(WidthPredictor, ConservativeUntilConfident)
{
    WidthPredictor wp;
    // Below-saturation confidence always predicts the maximum width:
    // the stored width must be installed and then repeated 3 times
    // (2-bit counter) before it is trusted.
    EXPECT_EQ(wp.predict(100), WidthClass::W64);
    for (int i = 0; i < 3; ++i) {
        wp.update(100, WidthClass::W8);
        EXPECT_EQ(wp.predict(100), WidthClass::W64) << "update " << i;
    }
    wp.update(100, WidthClass::W8);
    // Confidence saturated at 3: now predicts the stored width.
    EXPECT_EQ(wp.predict(100), WidthClass::W8);
}

TEST(WidthPredictor, MispredictionResetsCounter)
{
    WidthPredictor wp;
    for (int i = 0; i < 4; ++i)
        wp.update(5, WidthClass::W16);
    EXPECT_EQ(wp.predict(5), WidthClass::W16);
    // Actual wider than predicted: aggressive misprediction.
    EXPECT_TRUE(wp.update(5, WidthClass::W32));
    // Counter reset: conservative again.
    EXPECT_EQ(wp.predict(5), WidthClass::W64);
    EXPECT_EQ(wp.aggressiveMispredictions(), 1u);
}

TEST(WidthPredictor, ConservativeMispredictionsAreSafe)
{
    WidthPredictor wp;
    // While conservative (predicting W64), a narrower actual is a
    // conservative miss: lost opportunity, not a correctness event.
    EXPECT_FALSE(wp.update(9, WidthClass::W8));
    EXPECT_EQ(wp.aggressiveMispredictions(), 0u);
    EXPECT_EQ(wp.conservativeMispredictions(), 1u);
}

TEST(WidthPredictor, SteadyStreamsPredictNearPerfectly)
{
    WidthPredictor wp;
    u64 aggressive = 0;
    for (int i = 0; i < 1000; ++i) {
        wp.predict(77);
        if (wp.update(77, WidthClass::W16))
            ++aggressive;
    }
    EXPECT_EQ(aggressive, 0u);
    // Only the warm-up predictions (install + 3 confirmations) were
    // conservative-wrong.
    EXPECT_EQ(wp.conservativeMispredictions(), 4u);
}

TEST(WidthPredictor, StateBudgetMatchesPaper)
{
    WidthPredictor wp; // 4K entries x (2 width + 2 confidence) bits
    EXPECT_EQ(wp.stateBytes(), 4096u * 4 / 8);
    EXPECT_LE(wp.stateBytes(), 2048u); // ~1.5-2KB, tiny vs 64KB BP
}

TEST(WidthPredictor, ConfigValidation)
{
    WidthPredictorConfig cfg;
    cfg.entries = 1000; // not a power of two
    EXPECT_THROW(WidthPredictor{cfg}, std::logic_error);
}

TEST(LastArrival, LearnsTheLastSlot)
{
    LastArrivalPredictor la;
    EXPECT_EQ(la.predict(3), 0u); // cold: slot 0
    la.update(3, 1);
    EXPECT_EQ(la.predict(3), 1u);
    la.update(3, 0);
    EXPECT_EQ(la.predict(3), 0u);
}

TEST(LastArrival, AccuracyAccounting)
{
    LastArrivalPredictor la;
    la.predict(1);
    la.recordOutcome(true);
    la.predict(1);
    la.recordOutcome(false);
    EXPECT_EQ(la.predictions(), 2u);
    EXPECT_EQ(la.mispredictions(), 1u);
    la.resetStats();
    EXPECT_EQ(la.predictions(), 0u);
}

TEST(LastArrival, StateIsOneBitPerEntry)
{
    LastArrivalPredictor la; // 1K x 1 bit
    EXPECT_EQ(la.stateBytes(), 128u);
}

TEST(BranchPredictor, UnconditionalBranchesAlwaysHitTargets)
{
    BranchPredictor bp;
    Inst b;
    b.op = Opcode::B;
    b.target = 42;
    EXPECT_EQ(bp.predict(7, b, 8), 42u);
}

TEST(BranchPredictor, LearnsBiasedConditionals)
{
    BranchPredictor bp;
    Inst br;
    br.op = Opcode::BNEZ;
    br.src1 = x(1);
    br.target = 3;

    // Train taken repeatedly. Warm-up touches a fresh gshare index
    // each time the history shifts, so only steady-state accuracy
    // (after the 12-bit history saturates) must be perfect.
    unsigned steady_wrong = 0;
    for (int i = 0; i < 150; ++i) {
        const u32 predicted = bp.predict(10, br, 11);
        const bool wrong = bp.resolve(10, br, true, 3, predicted);
        if (i >= 50 && wrong)
            ++steady_wrong;
    }
    EXPECT_EQ(steady_wrong, 0u);
}

TEST(BranchPredictor, RasPairsCallsAndReturns)
{
    BranchPredictor bp;
    Inst call;
    call.op = Opcode::BL;
    call.dst = kLinkReg;
    call.target = 100;
    Inst ret;
    ret.op = Opcode::RET;
    ret.src1 = kLinkReg;

    EXPECT_EQ(bp.predict(5, call, 6), 100u);
    // The matching return pops the pushed fallthrough.
    EXPECT_EQ(bp.predict(120, ret, 121), 6u);
    // Cold RAS: falls back to fallthrough (a mispredict).
    EXPECT_EQ(bp.predict(130, ret, 131), 131u);
}

TEST(BranchPredictor, MispredictCounting)
{
    BranchPredictor bp;
    Inst br;
    br.op = Opcode::BEQZ;
    br.src1 = x(2);
    br.target = 9;
    const u32 predicted = bp.predict(1, br, 2);
    const u32 actual = predicted == 9 ? 2 : 9; // force a wrong outcome
    EXPECT_TRUE(bp.resolve(1, br, actual == 9, actual, predicted));
    EXPECT_EQ(bp.mispredictions(), 1u);
    EXPECT_EQ(bp.lookups(), 1u);
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Pipeline-structure tests: ROB ordering, LSQ ordering/forwarding,
 * reservation stations, RAT, and FU-pool booking (including the
 * 2-cycle transparent holds).
 */

#include <gtest/gtest.h>

#include "core/fu_pool.h"
#include "core/lsq.h"
#include "isa/builder.h"
#include "core/rat.h"
#include "core/rob.h"
#include "core/rs.h"

namespace redsoc {
namespace {

TEST(Rob, FifoDiscipline)
{
    Rob rob(3);
    rob.push(0);
    rob.push(1);
    rob.push(2);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head(), 0u);
    rob.pop(0);
    EXPECT_EQ(rob.head(), 1u);
    EXPECT_THROW(rob.pop(2), std::logic_error); // out of order
    EXPECT_THROW(rob.push(0), std::logic_error); // not in order
}

TEST(Rob, OverflowPanics)
{
    Rob rob(1);
    rob.push(5);
    EXPECT_THROW(rob.push(6), std::logic_error);
}

TEST(Lsq, OlderStoreGatesLoads)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);  // store, address unknown
    lsq.dispatch(2, false); // load
    EXPECT_TRUE(lsq.olderStoreUnresolved(2));
    lsq.resolve(1, 0x100, 8, 50);
    EXPECT_FALSE(lsq.olderStoreUnresolved(2));
}

TEST(Lsq, FullCoverForwarding)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, false);
    lsq.resolve(1, 0x100, 8, 40);
    const auto fwd = lsq.forwardFrom(2, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 40u);
}

TEST(Lsq, PartialOverlapIsFlagged)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, false);
    lsq.resolve(1, 0x104, 4, 40);
    const auto fwd = lsq.forwardFrom(2, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_FALSE(fwd->full_cover);
    EXPECT_TRUE(fwd->partial);
}

TEST(Lsq, YoungestOlderStoreWins)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 10);
    lsq.resolve(2, 0x100, 8, 20);
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(fwd->store_complete, 20u);
}

TEST(Lsq, YoungerStoresDoNotForwardBackwards)
{
    Lsq lsq(8);
    lsq.dispatch(1, false); // load
    lsq.dispatch(2, true);  // younger store
    lsq.resolve(2, 0x100, 8, 20);
    EXPECT_FALSE(lsq.forwardFrom(1, 0x100, 8).has_value());
}

TEST(Lsq, YoungerPartialStoreShadowsOlderFullCover)
{
    // An older store covers the whole load, but a younger store owns
    // four of its bytes: no single store sources every byte, so the
    // load cannot forward and must wait for BOTH stores (the byte
    // sources) before reading the cache. The youngest-first
    // early-return used to report only the younger store's (earlier)
    // completion here.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 90); // full cover, completes late
    lsq.resolve(2, 0x104, 4, 20); // partial shadow, completes early
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_FALSE(fwd->full_cover);
    EXPECT_TRUE(fwd->partial);
    EXPECT_EQ(fwd->store_complete, 90u);
}

TEST(Lsq, TwoPartialStoresJointlyCoverTheLoad)
{
    // Each store owns half the load: jointly covered, but not by a
    // single store, so it is still a stall (not a forward), gated on
    // the later of the two contributors.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 4, 70);
    lsq.resolve(2, 0x104, 4, 30);
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_FALSE(fwd->full_cover);
    EXPECT_TRUE(fwd->partial);
    EXPECT_EQ(fwd->store_complete, 70u);
}

TEST(Lsq, FullyShadowedOlderStoreHasNoTimingEffect)
{
    // The youngest store covers the whole load; an older overlapping
    // store contributes no byte and must not delay (or un-forward)
    // the load no matter how late it completes.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 500); // fully shadowed, very late
    lsq.resolve(2, 0x100, 8, 20);  // youngest: sources every byte
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 20u);
}

TEST(Lsq, DisjointYoungerStoreDoesNotHideOlderFullCover)
{
    // A younger store that does not overlap the load at all leaves an
    // older full-cover store as the single byte source: forwardable.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 60);
    lsq.resolve(2, 0x200, 8, 10); // disjoint
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 60u);
}

TEST(Lsq, UnresolvedStoreDoesNotContribute)
{
    // Only resolved stores enter the byte scan (the conservative
    // olderStoreUnresolved gate keeps the load from issuing anyway).
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 40);
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 40u);
}

TEST(Lsq, SeqsReportsProgramOrder)
{
    Lsq lsq(4);
    lsq.dispatch(3, true);
    lsq.dispatch(5, false);
    std::vector<SeqNum> out;
    lsq.seqs(out);
    EXPECT_EQ(out, (std::vector<SeqNum>{3, 5}));
}

TEST(Lsq, CommitInProgramOrder)
{
    Lsq lsq(4);
    lsq.dispatch(1, true);
    lsq.dispatch(2, false);
    EXPECT_THROW(lsq.commit(2), std::logic_error);
    lsq.commit(1);
    lsq.commit(2);
    EXPECT_EQ(lsq.size(), 0u);
}

TEST(Rs, AgeOrderMaintained)
{
    ReservationStations rs(4);
    rs.insert(10);
    rs.insert(11);
    rs.insert(12);
    rs.remove(11);
    ASSERT_EQ(rs.entries().size(), 2u);
    EXPECT_EQ(rs.entries()[0], 10u);
    EXPECT_EQ(rs.entries()[1], 12u);
    EXPECT_THROW(rs.remove(99), std::logic_error);
    EXPECT_THROW(rs.insert(5), std::logic_error); // violates order
}

TEST(Rs, SnapshotMatchesEntries)
{
    ReservationStations rs(8);
    std::vector<SeqNum> buf = {99, 98}; // stale contents get cleared
    rs.insert(4);
    rs.insert(7);
    rs.insert(9);
    rs.remove(7);
    rs.snapshot(buf);
    EXPECT_EQ(buf, (std::vector<SeqNum>{4, 9}));
    EXPECT_EQ(rs.entries(), buf);
}

// Regression for the tombstone + amortized-compaction scheme: age
// (oldest-first) order must survive arbitrary interleavings of
// in-order inserts and out-of-order removes, across many sweeps.
TEST(Rs, OrderPreservedAcrossInterleavedInsertRemove)
{
    ReservationStations rs(16);
    std::vector<SeqNum> model; // straightforward reference
    SeqNum next = 0;
    u64 prng = 0x243f6a8885a308d3ull;
    for (int step = 0; step < 5000; ++step) {
        prng = prng * 6364136223846793005ull + 1442695040888963407ull;
        const bool do_insert =
            !rs.full() && (model.empty() || (prng >> 33) % 3 != 0);
        if (do_insert) {
            rs.insert(next);
            model.push_back(next);
            ++next;
        } else {
            // Remove a pseudo-random live entry (issue is unordered).
            const size_t victim = (prng >> 33) % model.size();
            rs.remove(model[victim]);
            model.erase(model.begin() + victim);
        }
        ASSERT_EQ(rs.size(), model.size()) << "step " << step;
        ASSERT_EQ(rs.entries(), model) << "step " << step;
        ASSERT_EQ(rs.empty(), model.empty());
        ASSERT_EQ(rs.full(), model.size() >= 16);
    }
}

TEST(Rs, DoubleRemovePanics)
{
    ReservationStations rs(4);
    rs.insert(3);
    rs.insert(5);
    rs.remove(3);
    EXPECT_THROW(rs.remove(3), std::logic_error); // tombstoned
    EXPECT_THROW(rs.remove(4), std::logic_error); // never inserted
    EXPECT_EQ(rs.entries(), (std::vector<SeqNum>{5}));
}

TEST(Rat, TracksYoungestWriter)
{
    Rat rat;
    EXPECT_EQ(rat.writer(x(3)), kNoSeq);
    rat.setWriter(x(3), 7);
    rat.setWriter(x(3), 9);
    EXPECT_EQ(rat.writer(x(3)), 9u);
    rat.reset();
    EXPECT_EQ(rat.writer(x(3)), kNoSeq);
    EXPECT_THROW(rat.setWriter(kZeroReg, 1), std::logic_error);
}

TEST(Rat, VectorRegistersAreSeparate)
{
    Rat rat;
    rat.setWriter(x(3), 1);
    rat.setWriter(v(3), 2);
    EXPECT_EQ(rat.writer(x(3)), 1u);
    EXPECT_EQ(rat.writer(v(3)), 2u);
}

TEST(FuPool, PoolKindMapping)
{
    EXPECT_EQ(fuPoolKind(FuClass::IntAlu), FuPoolKind::Alu);
    EXPECT_EQ(fuPoolKind(FuClass::IntMul), FuPoolKind::Alu);
    EXPECT_EQ(fuPoolKind(FuClass::SimdMul), FuPoolKind::Simd);
    EXPECT_EQ(fuPoolKind(FuClass::FpDiv), FuPoolKind::Fp);
    EXPECT_EQ(fuPoolKind(FuClass::MemWrite), FuPoolKind::Mem);
}

TEST(FuPool, CapacityBoundsBooking)
{
    FuPool fu(smallCore()); // 3 ALUs
    EXPECT_EQ(fu.capacity(FuPoolKind::Alu), 3u);
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Alu, 10), 3u);
    fu.book(FuPoolKind::Alu, 10);
    fu.book(FuPoolKind::Alu, 10);
    fu.book(FuPoolKind::Alu, 10);
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Alu, 10), 0u);
    EXPECT_THROW(fu.book(FuPoolKind::Alu, 10), std::logic_error);
    // Other cycles are unaffected.
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Alu, 11), 3u);
}

TEST(FuPool, TwoCycleHoldSpansBothCycles)
{
    FuPool fu(smallCore());
    fu.book(FuPoolKind::Alu, 5, 2); // IT3: boundary-crossing op
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 5), 1u);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 6), 1u);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 7), 0u);
    fu.release(FuPoolKind::Alu, 5, 2);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 5), 0u);
}

TEST(FuPool, RingRecyclesOldCycles)
{
    FuPool fu(mediumCore());
    fu.book(FuPoolKind::Simd, 1);
    // 64+ cycles later the same ring slot is reused cleanly.
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Simd, 65),
              fu.capacity(FuPoolKind::Simd));
    fu.book(FuPoolKind::Simd, 65);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Simd, 65), 1u);
}

TEST(FuPool, ReleaseUnbookedPanics)
{
    FuPool fu(smallCore());
    EXPECT_THROW(fu.release(FuPoolKind::Fp, 3), std::logic_error);
}

} // namespace
} // namespace redsoc

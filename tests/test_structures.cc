/**
 * @file
 * Pipeline-structure tests: ROB ordering, LSQ ordering/forwarding,
 * reservation stations, RAT, FU-pool booking (including the 2-cycle
 * transparent holds), and the cache-model property suite (LRU state
 * equality, prefetcher replay determinism, shared-LLC inclusion and
 * MSHR accounting).
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fu_pool.h"
#include "core/lsq.h"
#include "isa/builder.h"
#include "core/rat.h"
#include "core/rob.h"
#include "core/rs.h"
#include "mem/cache.h"
#include "mem/prefetcher.h"
#include "proc/llc.h"

namespace redsoc {
namespace {

TEST(Rob, FifoDiscipline)
{
    Rob rob(3);
    rob.push(0);
    rob.push(1);
    rob.push(2);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head(), 0u);
    rob.pop(0);
    EXPECT_EQ(rob.head(), 1u);
    EXPECT_THROW(rob.pop(2), std::logic_error); // out of order
    EXPECT_THROW(rob.push(0), std::logic_error); // not in order
}

TEST(Rob, OverflowPanics)
{
    Rob rob(1);
    rob.push(5);
    EXPECT_THROW(rob.push(6), std::logic_error);
}

TEST(Lsq, OlderStoreGatesLoads)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);  // store, address unknown
    lsq.dispatch(2, false); // load
    EXPECT_TRUE(lsq.olderStoreUnresolved(2));
    lsq.resolve(1, 0x100, 8, 50);
    EXPECT_FALSE(lsq.olderStoreUnresolved(2));
}

TEST(Lsq, FullCoverForwarding)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, false);
    lsq.resolve(1, 0x100, 8, 40);
    const auto fwd = lsq.forwardFrom(2, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 40u);
}

TEST(Lsq, PartialOverlapIsFlagged)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, false);
    lsq.resolve(1, 0x104, 4, 40);
    const auto fwd = lsq.forwardFrom(2, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_FALSE(fwd->full_cover);
    EXPECT_TRUE(fwd->partial);
}

TEST(Lsq, YoungestOlderStoreWins)
{
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 10);
    lsq.resolve(2, 0x100, 8, 20);
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_EQ(fwd->store_complete, 20u);
}

TEST(Lsq, YoungerStoresDoNotForwardBackwards)
{
    Lsq lsq(8);
    lsq.dispatch(1, false); // load
    lsq.dispatch(2, true);  // younger store
    lsq.resolve(2, 0x100, 8, 20);
    EXPECT_FALSE(lsq.forwardFrom(1, 0x100, 8).has_value());
}

TEST(Lsq, YoungerPartialStoreShadowsOlderFullCover)
{
    // An older store covers the whole load, but a younger store owns
    // four of its bytes: no single store sources every byte, so the
    // load cannot forward and must wait for BOTH stores (the byte
    // sources) before reading the cache. The youngest-first
    // early-return used to report only the younger store's (earlier)
    // completion here.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 90); // full cover, completes late
    lsq.resolve(2, 0x104, 4, 20); // partial shadow, completes early
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_FALSE(fwd->full_cover);
    EXPECT_TRUE(fwd->partial);
    EXPECT_EQ(fwd->store_complete, 90u);
}

TEST(Lsq, TwoPartialStoresJointlyCoverTheLoad)
{
    // Each store owns half the load: jointly covered, but not by a
    // single store, so it is still a stall (not a forward), gated on
    // the later of the two contributors.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 4, 70);
    lsq.resolve(2, 0x104, 4, 30);
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_FALSE(fwd->full_cover);
    EXPECT_TRUE(fwd->partial);
    EXPECT_EQ(fwd->store_complete, 70u);
}

TEST(Lsq, FullyShadowedOlderStoreHasNoTimingEffect)
{
    // The youngest store covers the whole load; an older overlapping
    // store contributes no byte and must not delay (or un-forward)
    // the load no matter how late it completes.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 500); // fully shadowed, very late
    lsq.resolve(2, 0x100, 8, 20);  // youngest: sources every byte
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 20u);
}

TEST(Lsq, DisjointYoungerStoreDoesNotHideOlderFullCover)
{
    // A younger store that does not overlap the load at all leaves an
    // older full-cover store as the single byte source: forwardable.
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 60);
    lsq.resolve(2, 0x200, 8, 10); // disjoint
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 60u);
}

TEST(Lsq, UnresolvedStoreDoesNotContribute)
{
    // Only resolved stores enter the byte scan (the conservative
    // olderStoreUnresolved gate keeps the load from issuing anyway).
    Lsq lsq(8);
    lsq.dispatch(1, true);
    lsq.dispatch(2, true);
    lsq.dispatch(3, false);
    lsq.resolve(1, 0x100, 8, 40);
    const auto fwd = lsq.forwardFrom(3, 0x100, 8);
    ASSERT_TRUE(fwd.has_value());
    EXPECT_TRUE(fwd->full_cover);
    EXPECT_EQ(fwd->store_complete, 40u);
}

TEST(Lsq, SeqsReportsProgramOrder)
{
    Lsq lsq(4);
    lsq.dispatch(3, true);
    lsq.dispatch(5, false);
    std::vector<SeqNum> out;
    lsq.seqs(out);
    EXPECT_EQ(out, (std::vector<SeqNum>{3, 5}));
}

TEST(Lsq, CommitInProgramOrder)
{
    Lsq lsq(4);
    lsq.dispatch(1, true);
    lsq.dispatch(2, false);
    EXPECT_THROW(lsq.commit(2), std::logic_error);
    lsq.commit(1);
    lsq.commit(2);
    EXPECT_EQ(lsq.size(), 0u);
}

TEST(Rs, AgeOrderMaintained)
{
    ReservationStations rs(4);
    rs.insert(10);
    rs.insert(11);
    rs.insert(12);
    rs.remove(11);
    ASSERT_EQ(rs.entries().size(), 2u);
    EXPECT_EQ(rs.entries()[0], 10u);
    EXPECT_EQ(rs.entries()[1], 12u);
    EXPECT_THROW(rs.remove(99), std::logic_error);
    EXPECT_THROW(rs.insert(5), std::logic_error); // violates order
}

TEST(Rs, SnapshotMatchesEntries)
{
    ReservationStations rs(8);
    std::vector<SeqNum> buf = {99, 98}; // stale contents get cleared
    rs.insert(4);
    rs.insert(7);
    rs.insert(9);
    rs.remove(7);
    rs.snapshot(buf);
    EXPECT_EQ(buf, (std::vector<SeqNum>{4, 9}));
    EXPECT_EQ(rs.entries(), buf);
}

// Regression for the tombstone + amortized-compaction scheme: age
// (oldest-first) order must survive arbitrary interleavings of
// in-order inserts and out-of-order removes, across many sweeps.
TEST(Rs, OrderPreservedAcrossInterleavedInsertRemove)
{
    ReservationStations rs(16);
    std::vector<SeqNum> model; // straightforward reference
    SeqNum next = 0;
    u64 prng = 0x243f6a8885a308d3ull;
    for (int step = 0; step < 5000; ++step) {
        prng = prng * 6364136223846793005ull + 1442695040888963407ull;
        const bool do_insert =
            !rs.full() && (model.empty() || (prng >> 33) % 3 != 0);
        if (do_insert) {
            rs.insert(next);
            model.push_back(next);
            ++next;
        } else {
            // Remove a pseudo-random live entry (issue is unordered).
            const size_t victim = (prng >> 33) % model.size();
            rs.remove(model[victim]);
            model.erase(model.begin() + victim);
        }
        ASSERT_EQ(rs.size(), model.size()) << "step " << step;
        ASSERT_EQ(rs.entries(), model) << "step " << step;
        ASSERT_EQ(rs.empty(), model.empty());
        ASSERT_EQ(rs.full(), model.size() >= 16);
    }
}

TEST(Rs, DoubleRemovePanics)
{
    ReservationStations rs(4);
    rs.insert(3);
    rs.insert(5);
    rs.remove(3);
    EXPECT_THROW(rs.remove(3), std::logic_error); // tombstoned
    EXPECT_THROW(rs.remove(4), std::logic_error); // never inserted
    EXPECT_EQ(rs.entries(), (std::vector<SeqNum>{5}));
}

TEST(Rat, TracksYoungestWriter)
{
    Rat rat;
    EXPECT_EQ(rat.writer(x(3)), kNoSeq);
    rat.setWriter(x(3), 7);
    rat.setWriter(x(3), 9);
    EXPECT_EQ(rat.writer(x(3)), 9u);
    rat.reset();
    EXPECT_EQ(rat.writer(x(3)), kNoSeq);
    EXPECT_THROW(rat.setWriter(kZeroReg, 1), std::logic_error);
}

TEST(Rat, VectorRegistersAreSeparate)
{
    Rat rat;
    rat.setWriter(x(3), 1);
    rat.setWriter(v(3), 2);
    EXPECT_EQ(rat.writer(x(3)), 1u);
    EXPECT_EQ(rat.writer(v(3)), 2u);
}

TEST(FuPool, PoolKindMapping)
{
    EXPECT_EQ(fuPoolKind(FuClass::IntAlu), FuPoolKind::Alu);
    EXPECT_EQ(fuPoolKind(FuClass::IntMul), FuPoolKind::Alu);
    EXPECT_EQ(fuPoolKind(FuClass::SimdMul), FuPoolKind::Simd);
    EXPECT_EQ(fuPoolKind(FuClass::FpDiv), FuPoolKind::Fp);
    EXPECT_EQ(fuPoolKind(FuClass::MemWrite), FuPoolKind::Mem);
}

TEST(FuPool, CapacityBoundsBooking)
{
    FuPool fu(smallCore()); // 3 ALUs
    EXPECT_EQ(fu.capacity(FuPoolKind::Alu), 3u);
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Alu, 10), 3u);
    fu.book(FuPoolKind::Alu, 10);
    fu.book(FuPoolKind::Alu, 10);
    fu.book(FuPoolKind::Alu, 10);
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Alu, 10), 0u);
    EXPECT_THROW(fu.book(FuPoolKind::Alu, 10), std::logic_error);
    // Other cycles are unaffected.
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Alu, 11), 3u);
}

TEST(FuPool, TwoCycleHoldSpansBothCycles)
{
    FuPool fu(smallCore());
    fu.book(FuPoolKind::Alu, 5, 2); // IT3: boundary-crossing op
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 5), 1u);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 6), 1u);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 7), 0u);
    fu.release(FuPoolKind::Alu, 5, 2);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Alu, 5), 0u);
}

TEST(FuPool, RingRecyclesOldCycles)
{
    FuPool fu(mediumCore());
    fu.book(FuPoolKind::Simd, 1);
    // 64+ cycles later the same ring slot is reused cleanly.
    EXPECT_EQ(fu.freeUnits(FuPoolKind::Simd, 65),
              fu.capacity(FuPoolKind::Simd));
    fu.book(FuPoolKind::Simd, 65);
    EXPECT_EQ(fu.busyUnits(FuPoolKind::Simd, 65), 1u);
}

TEST(FuPool, ReleaseUnbookedPanics)
{
    FuPool fu(smallCore());
    EXPECT_THROW(fu.release(FuPoolKind::Fp, 3), std::logic_error);
}

// --- Cache-model properties (DESIGN.md §14) --------------------------

/**
 * Inclusion invariant: with L1s attached, every L1-resident line is
 * also LLC-resident at all times. The LLC is deliberately smaller
 * than the combined L1 footprint so capacity evictions must fire
 * back-invalidations to keep the invariant.
 */
TEST(CacheProperties, SharedLlcPreservesInclusionUnderEviction)
{
    SharedLlc llc(CacheConfig{"llc", 4 * 1024, 2, 64},
                  DramConfig{4, 0}, 2, 100);
    Cache l1a(CacheConfig{"l1a", 8 * 1024, 4, 64});
    Cache l1b(CacheConfig{"l1b", 8 * 1024, 4, 64});
    llc.attachL1(0, &l1a);
    llc.attachL1(1, &l1b);

    std::vector<Addr> touched;
    Rng rng(41);
    for (Cycle now = 0; now < 400; ++now) {
        const Addr addr = Addr{rng.range(0, 255)} * 64;
        const bool is_write = rng.chance(0.3);
        const unsigned core = static_cast<unsigned>(rng.range(0, 1));
        Cache &l1 = core == 0 ? l1a : l1b;
        l1.access(addr, is_write);
        llc.access(core, addr, is_write, now);
        touched.push_back(addr);

        for (Addr line : touched) {
            if (l1a.contains(line) || l1b.contains(line)) {
                ASSERT_TRUE(llc.tags().contains(line))
                    << "L1 line 0x" << std::hex << line
                    << " not backed by the LLC";
            }
        }
    }

    const LlcStats stats = llc.collectStats();
    EXPECT_GT(stats.evictions, 0u) << "grid too small to evict";
    u64 back_invals = 0;
    for (const LlcCoreStats &cs : stats.per_core)
        back_invals += cs.back_invalidations;
    EXPECT_GT(back_invals, 0u)
        << "evictions never found an L1 copy to invalidate";
}

/**
 * MSHR accounting: a cross-core access inside another core's fill
 * window rides the in-flight fill (one merge), never a second miss,
 * and per-core accesses always decompose as hits + misses + merges.
 */
TEST(CacheProperties, MshrMergeNeverDoubleCountsAMiss)
{
    SharedLlc llc(CacheConfig{"llc", 64 * 1024, 4, 64},
                  DramConfig{1, 0}, 2, 100);
    const Addr line = 0x4000;

    auto first = llc.access(0, line, false, 0);
    EXPECT_EQ(first.level, SharedLlc::Level::Miss);
    EXPECT_EQ(first.wait, 0u); // no cross-core bank conflict yet

    // Core 1 arrives mid-fill: merge, paying only the remainder.
    auto merged = llc.access(1, line, false, 10);
    EXPECT_EQ(merged.level, SharedLlc::Level::Merge);
    EXPECT_EQ(merged.wait, 90u);

    // Core 0 re-touches its own in-flight fill: free (infinite
    // same-core MLP, the seed model's rule).
    auto own = llc.access(0, line, false, 20);
    EXPECT_EQ(own.level, SharedLlc::Level::Hit);
    EXPECT_EQ(own.wait, 0u);

    // After completion the line is simply resident.
    auto late = llc.access(1, line, false, 500);
    EXPECT_EQ(late.level, SharedLlc::Level::Hit);
    EXPECT_EQ(late.wait, 0u);

    const LlcStats stats = llc.collectStats();
    ASSERT_EQ(stats.per_core.size(), 2u);
    u64 total_misses = 0;
    for (const LlcCoreStats &cs : stats.per_core) {
        EXPECT_EQ(cs.accesses, cs.hits + cs.misses + cs.mshr_merges);
        total_misses += cs.misses;
    }
    EXPECT_EQ(total_misses, 1u) << "merge was double-counted as a miss";
    EXPECT_EQ(stats.per_core[0].misses, 1u);
    EXPECT_EQ(stats.per_core[1].mshr_merges, 1u);
}

/**
 * Stride-prefetcher training is a pure function of the observed
 * (pc, addr) stream: replaying the identical stream through a fresh
 * instance reproduces the identical prefetch stream.
 */
TEST(CacheProperties, StridePrefetcherTrainingIsReplayDeterministic)
{
    std::vector<std::pair<u32, Addr>> stream;
    Rng rng(43);
    Addr cursors[4] = {0x1000, 0x8000, 0x20000, 0x40000};
    const s64 strides[4] = {64, 128, -64, 192};
    for (int i = 0; i < 500; ++i) {
        const unsigned s = static_cast<unsigned>(rng.range(0, 3));
        stream.emplace_back(0x400 + s * 4, cursors[s]);
        cursors[s] = static_cast<Addr>(
            static_cast<s64>(cursors[s]) + strides[s]);
        if (rng.chance(0.1)) // noise access on a fifth pc
            stream.emplace_back(0x900, Addr{rng.next()} & 0xffffc0);
    }

    StridePrefetcher a;
    StridePrefetcher b;
    for (const auto &[pc, addr] : stream) {
        const std::vector<Addr> pa = a.observe(pc, addr);
        const std::vector<Addr> pb = b.observe(pc, addr);
        ASSERT_EQ(pa, pb);
    }
    EXPECT_EQ(a.issued(), b.issued());
    EXPECT_GT(a.issued(), 0u) << "streams never trained to confidence";
}

/**
 * True-LRU state is fully determined by the access history: two
 * caches fed the identical sequence agree access-for-access on every
 * observable (hit, victim choice, writeback) from then on.
 */
TEST(CacheProperties, LruStateEqualAfterIdenticalAccessSequences)
{
    const CacheConfig cfg{"lru", 1024, 4, 64}; // 4 sets x 4 ways
    Cache a(cfg);
    Cache b(cfg);

    Rng rng(47);
    std::vector<Addr> touched;
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = Addr{rng.range(0, 63)} * 64;
        const bool is_write = rng.chance(0.4);
        touched.push_back(addr);
        const auto ra = a.access(addr, is_write);
        const auto rb = b.access(addr, is_write);
        ASSERT_EQ(ra.hit, rb.hit) << "at access " << i;
        ASSERT_EQ(ra.had_victim, rb.had_victim) << "at access " << i;
        ASSERT_EQ(ra.victim_line, rb.victim_line) << "at access " << i;
        ASSERT_EQ(ra.writeback, rb.writeback) << "at access " << i;
    }
    EXPECT_EQ(a.hits(), b.hits());
    EXPECT_EQ(a.misses(), b.misses());
    for (Addr line : touched)
        ASSERT_EQ(a.contains(line), b.contains(line));
}

} // namespace
} // namespace redsoc

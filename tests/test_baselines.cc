/**
 * @file
 * Comparator tests: timing speculation (error-rate-bounded static
 * overclocking) and the MOS fusion-opportunity analysis.
 */

#include <gtest/gtest.h>

#include "baselines/fusion.h"
#include "baselines/timing_speculation.h"
#include "helpers.h"

namespace redsoc {
namespace {

using test::emitLogicChain;
using test::makeTrace;

Trace
chainTrace(bool logic, unsigned n)
{
    ProgramBuilder b(logic ? "logic" : "arith");
    if (logic) {
        emitLogicChain(b, n);
    } else {
        // Wide adds whose operands stay wide: x = 2x + 1 keeps the
        // value dense across the full 64 bits.
        b.movImm(x(1), 0x123456789abcdefll);
        for (unsigned i = 0; i < n; ++i) {
            b.alu(Opcode::ADD, x(1), x(1), x(1));
            b.alui(Opcode::ADD, x(1), x(1), 1);
        }
    }
    b.halt();
    return makeTrace(b);
}

TEST(TimingSpeculation, NominalPeriodHasNoErrors)
{
    TimingModel model;
    TimingSpeculation ts;
    EXPECT_DOUBLE_EQ(ts.errorRate(chainTrace(true, 100), model, 500),
                     0.0);
}

TEST(TimingSpeculation, ErrorRateMonotoneInPeriod)
{
    TimingModel model;
    TimingSpeculation ts;
    const Trace trace = chainTrace(false, 200);
    double prev = 0.0;
    for (Picos p = 500; p >= 250; p -= 50) {
        const double rate = ts.errorRate(trace, model, p);
        EXPECT_GE(rate, prev) << "period " << p;
        prev = rate;
    }
    EXPECT_GT(prev, 0.5); // wide adds blow through a 250ps period
}

TEST(TimingSpeculation, ChosenPeriodRespectsErrorBand)
{
    TimingModel model;
    TimingSpeculation ts;
    const Trace trace = chainTrace(false, 300);
    const Picos period = ts.choosePeriod(trace, model);
    EXPECT_LT(period, 500u);
    EXPECT_LE(ts.errorRate(trace, model, period), 0.01);
    // One grid step faster would break the band (or hit the floor).
    EXPECT_GT(ts.errorRate(trace, model, period - 10), 0.01);
}

TEST(TimingSpeculation, LogicHeavyCodeOverclocksFurther)
{
    TimingModel model;
    TimingSpeculation ts;
    const Picos logic_period =
        ts.choosePeriod(chainTrace(true, 300), model);
    const Picos arith_period =
        ts.choosePeriod(chainTrace(false, 300), model);
    EXPECT_LT(logic_period, arith_period);
}

TEST(TimingSpeculation, SpeedupAccountsForFixedMemoryTime)
{
    // ALU-only code: TS speedup tracks the period ratio closely.
    const Trace alu = chainTrace(true, 300);
    CoreConfig config = configFor("medium", SchedMode::Baseline);
    OooCore core(config);
    const Cycle base_cycles = core.run(alu).cycles;

    TimingSpeculation ts;
    const auto result = ts.run(alu, config, base_cycles);
    EXPECT_GT(result.speedup, 1.1);
    EXPECT_LE(result.speedup, 500.0 / result.period_ps + 0.01);

    // Memory-bound code: cycles inflate, eating the gain.
    MemoryImage mem;
    ProgramBuilder mb("membound");
    mb.movImm(x(1), 0);
    for (unsigned i = 0; i < 64; ++i) {
        mb.load(Opcode::LDR, x(2), x(1), static_cast<s64>(i) * 4096);
        mb.alu(Opcode::ADD, x(3), x(3), x(2)); // serialize on loads
        mb.mov(x(1), x(3));
    }
    mb.alui(Opcode::AND, x(1), x(1), 0); // back to address 0 pattern
    mb.halt();
    const Trace membound = makeTrace(mb, &mem);
    OooCore core2(config);
    const Cycle mem_base = core2.run(membound).cycles;
    const auto mem_result = ts.run(membound, config, mem_base);
    EXPECT_LT(mem_result.speedup, result.speedup);
}

TEST(FusionAnalysis, LogicChainsAreHighlyFusable)
{
    TimingModel model;
    SubCycleClock clock(3, 500);
    SlackLut lut(model, clock);
    const auto opp = analyzeFusionOpportunity(chainTrace(true, 200), lut);
    EXPECT_GT(opp.eligible_pairs, 150u);
    EXPECT_GT(opp.fusableFraction(), 0.9);
}

TEST(FusionAnalysis, WideArithChainsAreNot)
{
    TimingModel model;
    SubCycleClock clock(3, 500);
    SlackLut lut(model, clock);
    const auto opp =
        analyzeFusionOpportunity(chainTrace(false, 200), lut);
    EXPECT_LT(opp.fusableFraction(), 0.2);
}

} // namespace
} // namespace redsoc

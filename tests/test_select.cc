/**
 * @file
 * Select-arbitration tests, including a literal replay of the
 * paper's Fig.9 example and the skewed-selection invariants of
 * Sec.IV-D.
 */

#include <gtest/gtest.h>

#include "redsoc/skewed_select.h"

namespace redsoc {
namespace {

u64
bitset(std::initializer_list<unsigned> bits)
{
    u64 v = 0;
    for (unsigned b : bits)
        v |= u64{1} << b;
    return v;
}

/** The 4-entry priority table of Fig.9. The figure writes each mask
 *  left-to-right as entries 0..3 ("a 1 at the ith bit from the left
 *  indicates that the ith entry is older"), so entry1's "1001" marks
 *  entries {0,3} older, entry2's "1101" marks {0,1,3}, and entry3's
 *  "1000" marks {0}. Our bitmasks put entry i at bit i. */
void
installFig9Masks(SelectArbiter &arb)
{
    arb.setMask(0, 0b0000);
    arb.setMask(1, 0b1001); // {0, 3}
    arb.setMask(2, 0b1011); // {0, 1, 3}
    arb.setMask(3, 0b0001); // {0}
}

TEST(SelectArbiter, Fig9aConventionalExample)
{
    // Entries 1,2,3 awake; entry 3's only older awake entry check:
    // the figure grants entry 3 (its mask has no awake bits).
    SelectArbiter arb(4);
    installFig9Masks(arb);
    const u64 wakeup = bitset({1, 2, 3});
    const auto grants = arb.arbitrate(wakeup, 1);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0], 3u);
}

TEST(SelectArbiter, MultipleGrantsFollowPriority)
{
    SelectArbiter arb(4);
    installFig9Masks(arb);
    const auto grants = arb.arbitrate(bitset({1, 2, 3}), 3);
    ASSERT_EQ(grants.size(), 3u);
    EXPECT_EQ(grants[0], 3u); // oldest
    EXPECT_EQ(grants[1], 1u);
    EXPECT_EQ(grants[2], 2u); // youngest
}

TEST(SelectArbiter, NoRequestsNoGrants)
{
    SelectArbiter arb(4);
    installFig9Masks(arb);
    EXPECT_TRUE(arb.arbitrate(0, 4).empty());
}

TEST(SelectArbiter, AgeOrderHelperBuildsConsistentMasks)
{
    SelectArbiter arb(4);
    // entry2 oldest, then 0, then 3, then 1.
    arb.setAgeOrder({1, 3, 0, 2});
    const auto grants = arb.arbitrate(bitset({0, 1, 2, 3}), 4);
    ASSERT_EQ(grants.size(), 4u);
    EXPECT_EQ(grants[0], 2u);
    EXPECT_EQ(grants[1], 0u);
    EXPECT_EQ(grants[2], 3u);
    EXPECT_EQ(grants[3], 1u);
}

TEST(SkewedSelect, Fig9bSpeculativeExample)
{
    // Fig.9.b: entries 1,2,3 awake; entry 2 is the only conventional
    // (P) request; 1 and 3 are speculative GP requests. Despite being
    // younger than entry 3, entry 2 must win.
    SkewedSelectArbiter arb(4);
    installFig9Masks(arb);
    const u64 wakeup = bitset({1, 2, 3});
    const u64 spec = bitset({1, 3});
    const auto grants = arb.arbitrateSkewed(wakeup, spec, 1);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0], 2u);
}

TEST(SkewedSelect, EffectiveMaskRewrites)
{
    SkewedSelectArbiter arb(4);
    installFig9Masks(arb);
    const u64 wakeup = bitset({1, 2, 3});
    const u64 spec = bitset({1, 3});
    // Conventional entry 2: speculative bits cleared from its mask,
    // matching the figure's 1101 -> x000 rewrite.
    EXPECT_EQ(arb.effectiveMask(2, wakeup, spec), 0b1011u & ~spec);
    // Speculative entry 1: all awake conventional entries added,
    // matching the figure's 1001 -> 1011 rewrite.
    EXPECT_EQ(arb.effectiveMask(1, wakeup, spec), 0b1001u | bitset({2}));
}

TEST(SkewedSelect, LeftoverUnitsGoToSpeculative)
{
    SkewedSelectArbiter arb(4);
    installFig9Masks(arb);
    const auto grants =
        arb.arbitrateSkewed(bitset({1, 2, 3}), bitset({1, 3}), 3);
    ASSERT_EQ(grants.size(), 3u);
    EXPECT_EQ(grants[0], 2u); // conventional first
    EXPECT_EQ(grants[1], 3u); // then speculative by age
    EXPECT_EQ(grants[2], 1u);
}

TEST(SkewedSelect, NoConventionalRequestEverLosesToSpeculative)
{
    // Property sweep: for every wakeup/spec pattern on 6 entries with
    // age order 0<1<...<5, every granted speculative entry implies
    // all awake conventional entries were granted first.
    SkewedSelectArbiter arb(6);
    arb.setAgeOrder({0, 1, 2, 3, 4, 5});
    for (u64 wakeup = 0; wakeup < 64; ++wakeup) {
        for (u64 spec0 = 0; spec0 < 64; ++spec0) {
            const u64 spec = spec0 & wakeup;
            for (unsigned m = 1; m <= 3; ++m) {
                const auto grants = arb.arbitrateSkewed(wakeup, spec, m);
                u64 granted = 0;
                for (unsigned g : grants)
                    granted |= u64{1} << g;
                const u64 conv_awake = wakeup & ~spec;
                const u64 spec_granted = granted & spec;
                if (spec_granted != 0) {
                    EXPECT_EQ(conv_awake & ~granted, 0u)
                        << "wakeup=" << wakeup << " spec=" << spec
                        << " m=" << m;
                }
                // Grants never exceed requests or the unit budget.
                EXPECT_EQ(granted & ~wakeup, 0u);
                EXPECT_LE(grants.size(), m);
            }
        }
    }
}

TEST(SkewedSelect, AllConventionalDegeneratesToPlainSelect)
{
    SkewedSelectArbiter skewed(5);
    SelectArbiter plain(5);
    skewed.setAgeOrder({4, 2, 0, 1, 3});
    plain.setAgeOrder({4, 2, 0, 1, 3});
    for (u64 wakeup = 0; wakeup < 32; ++wakeup) {
        EXPECT_EQ(skewed.arbitrateSkewed(wakeup, 0, 3),
                  plain.arbitrate(wakeup, 3));
    }
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Shared helpers for core-level tests: build a trace from a program
 * builder and run it through a configured core.
 */

#ifndef REDSOC_TESTS_HELPERS_H
#define REDSOC_TESTS_HELPERS_H

#include <memory>

#include "core/ooo_core.h"
#include "func/interpreter.h"
#include "isa/builder.h"
#include "sim/driver.h"

namespace redsoc {
namespace test {

inline Trace
makeTrace(ProgramBuilder &b, MemoryImage *mem = nullptr)
{
    MemoryImage local;
    MemoryImage &m = mem ? *mem : local;
    auto program = std::make_shared<const Program>(b.build());
    return traceProgram(program, m);
}

inline CoreStats
runCore(const Trace &trace, CoreConfig config)
{
    OooCore core(std::move(config));
    return core.run(trace);
}

/** A chain of @p n dependent ADDs (narrow operands) after a seed. */
inline void
emitAddChain(ProgramBuilder &b, unsigned n, RegIdx reg = x(1))
{
    b.movImm(reg, 1);
    for (unsigned i = 0; i < n; ++i)
        b.alui(Opcode::ADD, reg, reg, 1);
}

/** A chain of @p n dependent narrow logical ops (maximal slack). */
inline void
emitLogicChain(ProgramBuilder &b, unsigned n, RegIdx reg = x(1))
{
    b.movImm(reg, 0x55);
    for (unsigned i = 0; i < n; ++i)
        b.alui(Opcode::EOR, reg, reg, 0x33);
}

} // namespace test
} // namespace redsoc

#endif // REDSOC_TESTS_HELPERS_H

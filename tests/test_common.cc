/**
 * @file
 * Unit tests for the common substrate: bit utilities, RNG,
 * statistics and table rendering.
 */

#include <gtest/gtest.h>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace redsoc {
namespace {

TEST(BitUtils, EffectiveWidthBasics)
{
    EXPECT_EQ(effectiveWidth(0), 1u);
    EXPECT_EQ(effectiveWidth(1), 1u);
    EXPECT_EQ(effectiveWidth(2), 2u);
    EXPECT_EQ(effectiveWidth(3), 2u);
    EXPECT_EQ(effectiveWidth(0xff), 8u);
    EXPECT_EQ(effectiveWidth(0x100), 9u);
    EXPECT_EQ(effectiveWidth(~u64{0}), 64u);
}

TEST(BitUtils, EffectiveWidthSigned)
{
    EXPECT_EQ(effectiveWidthSigned(0), 1u);
    EXPECT_EQ(effectiveWidthSigned(-1), 2u);  // ~(-1) == 0
    EXPECT_EQ(effectiveWidthSigned(127), 7u);
    EXPECT_EQ(effectiveWidthSigned(-128), 8u);
}

TEST(BitUtils, BitsExtraction)
{
    EXPECT_EQ(bits(0xDEADBEEF, 0, 8), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 16, 16), 0xDEADu);
    EXPECT_EQ(bits(~u64{0}, 0, 64), ~u64{0});
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1234, 16), 0x1234);
}

TEST(BitUtils, Logs)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_THROW(ceilLog2(0), std::logic_error);
}

TEST(BitUtils, PowerOfTwoAndRotate)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(rotateRight32(0x80000001u, 1), 0xC0000000u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_THROW(rng.below(0), std::logic_error);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const u64 v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NarrowValueBiasesNarrow)
{
    Rng rng(13);
    double mean_width = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i)
        mean_width += effectiveWidth(rng.narrowValue(48));
    mean_width /= kSamples;
    // Geometric-ish decay: most values far narrower than 48 bits.
    EXPECT_LT(mean_width, 8.0);
    EXPECT_GT(mean_width, 1.5);
}

TEST(Histogram, MeanAndBuckets)
{
    Histogram h(8);
    h.sample(2);
    h.sample(2);
    h.sample(5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(7), 0u);
}

TEST(Histogram, OverflowBucketStillCountsInMean)
{
    Histogram h(4);
    h.sample(100);
    EXPECT_EQ(h.bucket(4), 1u); // collapsed
    EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(Histogram, WeightedMeanIsLengthBiased)
{
    // 10 sequences of length 2, 1 sequence of length 10:
    // E_op[L] = (10*4 + 100) / (20 + 10).
    Histogram h(16);
    h.sample(2, 10);
    h.sample(10, 1);
    EXPECT_DOUBLE_EQ(h.weightedMean(), (10.0 * 4 + 100) / (20 + 10));
}

TEST(StatGroup, RecordAndDump)
{
    StatGroup g("core");
    g.recordScalar("ipc", 1.5);
    g.addScalar("cycles", 10);
    g.addScalar("cycles", 5);
    EXPECT_DOUBLE_EQ(g.scalar("ipc"), 1.5);
    EXPECT_DOUBLE_EQ(g.scalar("cycles"), 15);
    EXPECT_TRUE(g.has("ipc"));
    EXPECT_FALSE(g.has("nope"));
    EXPECT_THROW(g.scalar("nope"), std::logic_error);
    EXPECT_NE(g.dump().find("core.ipc 1.5"), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.256, 1), "25.6%");
}

} // namespace
} // namespace redsoc

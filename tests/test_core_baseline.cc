/**
 * @file
 * Baseline OOO-core timing tests on hand-built traces: back-to-back
 * dependent issue, superscalar throughput, load-use latency,
 * multi-cycle units, FU contention, branch-misprediction penalty and
 * store-to-load forwarding.
 */

#include <gtest/gtest.h>

#include "helpers.h"

namespace redsoc {
namespace {

using test::emitAddChain;
using test::makeTrace;
using test::runCore;

CoreConfig
baseline(const std::string &core = "medium")
{
    return configFor(core, SchedMode::Baseline);
}

TEST(BaselineCore, DependentChainRunsBackToBack)
{
    ProgramBuilder b("chain");
    emitAddChain(b, 300);
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats stats = runCore(trace, baseline());
    // One dependent ALU op per cycle plus small fill/drain overhead.
    EXPECT_GE(stats.cycles, 300u);
    EXPECT_LE(stats.cycles, 330u);
    EXPECT_EQ(stats.committed, trace.size());
}

TEST(BaselineCore, IndependentOpsExploitWidth)
{
    ProgramBuilder b("ilp");
    // Four independent accumulators: enough ILP for a 4-wide core.
    for (unsigned r = 1; r <= 4; ++r)
        b.movImm(x(r), r);
    for (unsigned i = 0; i < 100; ++i)
        for (unsigned r = 1; r <= 4; ++r)
            b.alui(Opcode::ADD, x(r), x(r), 1);
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats stats = runCore(trace, baseline("medium"));
    // 400 ALU ops on a 4-wide, 4-ALU core: IPC close to 4.
    EXPECT_GT(stats.ipc(), 3.0);
}

TEST(BaselineCore, CommitWidthBoundsIpc)
{
    ProgramBuilder b("wide");
    for (unsigned r = 1; r <= 8; ++r)
        b.movImm(x(r), r);
    for (unsigned i = 0; i < 50; ++i)
        for (unsigned r = 1; r <= 8; ++r)
            b.alui(Opcode::ADD, x(r), x(r), 1);
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats small = runCore(trace, baseline("small"));
    const CoreStats big = runCore(trace, baseline("big"));
    EXPECT_LE(small.ipc(), 3.0 + 1e-9);
    EXPECT_GT(big.ipc(), small.ipc());
}

TEST(BaselineCore, LoadUseLatencyIsVisible)
{
    // A pointer-increment chain of dependent L1-hit loads.
    MemoryImage mem;
    for (unsigned i = 0; i < 64; ++i)
        mem.poke64(0x1000 + 8 * i, 0x1000 + 8 * (i + 1));
    ProgramBuilder b("loaduse");
    b.movImm(x(1), 0x1000);
    for (unsigned i = 0; i < 64; ++i)
        b.load(Opcode::LDR, x(1), x(1), 0);
    b.halt();
    const Trace trace = makeTrace(b, &mem);
    const CoreStats stats = runCore(trace, baseline());
    // Each dependent load costs at least the L1 latency (2 cycles).
    EXPECT_GE(stats.cycles, 64u * 2);
}

TEST(BaselineCore, MultiCycleUnitsSerializeChains)
{
    ProgramBuilder b("muls");
    b.movImm(x(1), 3);
    for (unsigned i = 0; i < 50; ++i)
        b.mul(x(1), x(1), x(1));
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats stats = runCore(trace, baseline());
    // Dependent multiplies pay the full 3-cycle latency each.
    EXPECT_GE(stats.cycles, 50u * fuLatency(FuClass::IntMul));
}

TEST(BaselineCore, UnpipelinedDividesBlockTheUnit)
{
    ProgramBuilder b("divs");
    b.movImm(x(1), 1000000);
    b.movImm(x(2), 3);
    // Independent divides: still serialized by the unpipelined unit
    // once the ALU pool's divide capacity saturates.
    for (unsigned i = 0; i < 12; ++i)
        b.udiv(x(3 + (i % 8)), x(1), x(2));
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats stats = runCore(trace, baseline("small"));
    // 12 divides / 3 ALU ports, 12 cycles each, unpipelined.
    EXPECT_GE(stats.cycles, 12u / 3 * fuLatency(FuClass::IntDiv));
}

TEST(BaselineCore, FuContentionRaisesStallRate)
{
    ProgramBuilder lowp("low");
    emitAddChain(lowp, 200); // single chain: no contention
    lowp.halt();
    // Bursty readiness: a long-latency load gates a fan-out of
    // independent consumers, which all wake at once and fight for
    // the small core's 3 ALUs.
    MemoryImage mem;
    ProgramBuilder highp("high");
    highp.movImm(x(1), 0x400000);
    for (unsigned blk = 0; blk < 12; ++blk) {
        highp.load(Opcode::LDR, x(2), x(1),
                   static_cast<s64>(blk) * 8192);
        for (unsigned r = 3; r <= 12; ++r)
            highp.alu(Opcode::ADD, x(r), x(2), x(2));
    }
    highp.halt();

    const CoreStats low = runCore(makeTrace(lowp), baseline("small"));
    const CoreStats high =
        runCore(makeTrace(highp, &mem), baseline("small"));
    EXPECT_GT(high.fuStallRate(), low.fuStallRate());
    EXPECT_GT(high.fu_stall_cycles, 10u);
}

TEST(BaselineCore, BranchMispredictsCostRedirects)
{
    // Data-dependent unpredictable branches from an LCG.
    auto build = [](bool predictable) {
        ProgramBuilder b(predictable ? "pred" : "unpred");
        auto loop = b.newLabel();
        auto skip = b.newLabel();
        b.movImm(x(1), 200);                 // trip count
        b.movImm(x(2), 0x1234567);           // lcg state
        b.movImm(x(3), 6364136223846793005); // multiplier
        b.bind(loop);
        b.alu(Opcode::MUL, x(2), x(2), x(3));
        b.alui(Opcode::ADD, x(2), x(2), 1442695040888963407ll);
        if (predictable) {
            b.movImm(x(4), 0); // never taken
        } else {
            b.lsrImm(x(4), x(2), 63); // effectively random bit
        }
        b.beqz(x(4), skip);
        b.alui(Opcode::ADD, x(5), x(5), 1);
        b.bind(skip);
        b.alui(Opcode::SUB, x(1), x(1), 1);
        b.bnez(x(1), loop);
        b.halt();
        return makeTrace(b);
    };

    const CoreStats good = runCore(build(true), baseline());
    const CoreStats bad = runCore(build(false), baseline());
    EXPECT_GT(bad.branchMispredictRate(), 0.1);
    EXPECT_LT(good.branchMispredictRate(), 0.05);
    EXPECT_GT(bad.cycles, good.cycles);
}

TEST(BaselineCore, StoreToLoadForwarding)
{
    ProgramBuilder b("stld");
    b.movImm(x(1), 0x2000);
    b.movImm(x(2), 99);
    for (unsigned i = 0; i < 32; ++i) {
        b.store(Opcode::STR, x(2), x(1), 8 * i);
        b.load(Opcode::LDR, x(3), x(1), 8 * i);
        b.alu(Opcode::ADD, x(2), x(3), x(2));
    }
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats stats = runCore(trace, baseline());
    EXPECT_GT(stats.store_forwards, 20u);
}

TEST(BaselineCore, ColdMissesDominateScatteredLoads)
{
    MemoryImage mem;
    ProgramBuilder b("scatter");
    b.movImm(x(1), 0);
    // 64 loads, each from its own 4K page: all cold misses.
    for (unsigned i = 0; i < 64; ++i)
        b.load(Opcode::LDR, x(2), x(1), static_cast<s64>(i) * 4096);
    b.halt();
    const Trace trace = makeTrace(b, &mem);
    const CoreStats stats = runCore(trace, baseline());
    EXPECT_EQ(stats.l1_load_misses, 64u);
    // Independent misses overlap (memory-level parallelism), so the
    // run is far faster than 64 serial DRAM accesses but still far
    // slower than 64 hits.
    EXPECT_GT(stats.cycles, 200u);
}

TEST(BaselineCore, DeterministicAcrossRuns)
{
    ProgramBuilder b("det");
    emitAddChain(b, 100);
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats a = runCore(trace, baseline());
    const CoreStats b2 = runCore(trace, baseline());
    EXPECT_EQ(a.cycles, b2.cycles);
    EXPECT_EQ(a.fu_stall_cycles, b2.fu_stall_cycles);
}

TEST(BaselineCore, BaselineNeverRecycles)
{
    ProgramBuilder b("none");
    emitAddChain(b, 100);
    b.halt();
    const CoreStats stats = runCore(makeTrace(b), baseline());
    EXPECT_EQ(stats.recycled_ops, 0u);
    EXPECT_EQ(stats.egpw_requests, 0u);
    EXPECT_EQ(stats.fused_ops, 0u);
    EXPECT_EQ(stats.two_cycle_holds, 0u);
}

TEST(BaselineCore, RobCapacityLimitsMlpWindow)
{
    // A long-latency miss followed by many independent adds: the
    // small core's 40-entry ROB caps how much slips under the miss.
    auto build = [] {
        MemoryImage mem;
        ProgramBuilder b("window");
        b.movImm(x(1), 0x900000);
        b.load(Opcode::LDR, x(2), x(1), 0); // cold DRAM miss
        for (unsigned r = 3; r <= 6; ++r)
            b.movImm(x(r), r);
        for (unsigned i = 0; i < 400; ++i)
            b.alui(Opcode::ADD, x(3 + (i % 4)), x(3 + (i % 4)), 1);
        b.halt();
        return makeTrace(b, &mem);
    };
    const Trace trace = build();
    const CoreStats small = runCore(trace, baseline("small"));
    const CoreStats big = runCore(trace, baseline("big"));
    EXPECT_LT(big.cycles, small.cycles);
}

} // namespace
} // namespace redsoc

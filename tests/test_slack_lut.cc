/**
 * @file
 * Slack-LUT tests (Sec.II-B / Fig.3): exactly 14 buckets, correct
 * bucket routing, and — the safety property slack recycling rests on
 * — conservativeness: every estimate >= the true circuit delay.
 */

#include <set>

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "timing/slack_lut.h"

namespace redsoc {
namespace {

class SlackLutTest : public ::testing::Test
{
  protected:
    SlackLutTest() : clock(3, 500), lut(model, clock) {}

    TimingModel model;
    SubCycleClock clock;
    SlackLut lut;

    Inst
    scalar(Opcode op, ShiftKind shift = ShiftKind::None)
    {
        Inst i;
        i.op = op;
        i.src1 = x(1);
        i.src2 = x(2);
        i.op2_shift = shift;
        i.shamt = shift == ShiftKind::None ? 0 : 3;
        return i;
    }

    Inst
    simd(Opcode op, VecType vt)
    {
        Inst i;
        i.op = op;
        i.dst = v(0);
        i.src1 = v(1);
        i.src2 = v(2);
        i.vtype = vt;
        return i;
    }
};

TEST_F(SlackLutTest, ExactlyFourteenPopulatedBuckets)
{
    EXPECT_EQ(SlackLut::kNumBuckets, 14u);
    for (const SlackBucket &b : lut.buckets()) {
        EXPECT_FALSE(b.name.empty());
        EXPECT_GT(b.worst_case_ps, 0u);
        EXPECT_LE(b.worst_case_ps, 500u);
        EXPECT_GE(b.ticks, 1u);
        EXPECT_LE(b.ticks, clock.ticksPerCycle());
    }
}

TEST_F(SlackLutTest, LogicCollapsesWidths)
{
    const Inst andi = scalar(Opcode::AND);
    EXPECT_EQ(lut.bucketIndex(andi, WidthClass::W8),
              lut.bucketIndex(andi, WidthClass::W64));
}

TEST_F(SlackLutTest, ArithSplitsByWidthAndShift)
{
    const Inst add = scalar(Opcode::ADD);
    const Inst add_shift = scalar(Opcode::ADD, ShiftKind::Lsr);
    EXPECT_NE(lut.bucketIndex(add, WidthClass::W8),
              lut.bucketIndex(add, WidthClass::W64));
    EXPECT_NE(lut.bucketIndex(add, WidthClass::W32),
              lut.bucketIndex(add_shift, WidthClass::W32));
    // Narrower width class -> smaller (or equal) estimate.
    EXPECT_LE(lut.lookupTicks(add, WidthClass::W8),
              lut.lookupTicks(add, WidthClass::W64));
}

TEST_F(SlackLutTest, ShiftOpcodesLandInLogicShiftRow)
{
    const Inst lsr = scalar(Opcode::LSR);
    const Inst rrx = scalar(Opcode::RRX);
    EXPECT_EQ(lut.bucketIndex(lsr, WidthClass::W64),
              lut.bucketIndex(rrx, WidthClass::W64));
    const Inst mov = scalar(Opcode::MOV);
    const Inst andi = scalar(Opcode::AND);
    EXPECT_EQ(lut.bucketIndex(mov, WidthClass::W64),
              lut.bucketIndex(andi, WidthClass::W64));
    // The shift row covers exactly the shift opcodes' delays: the
    // barrel shifter at ~210ps leaves >55% slack.
    EXPECT_LE(lut.buckets()[lut.bucketIndex(lsr, WidthClass::W64)]
                  .worst_case_ps,
              220u);
}

TEST_F(SlackLutTest, SimdBucketsByType)
{
    for (unsigned t = 0; t < 4; ++t) {
        const auto vt = static_cast<VecType>(t);
        const Inst vadd = simd(Opcode::VADD, vt);
        // Type comes from the instruction; the width class is a
        // don't-care for SIMD (Fig.3).
        EXPECT_EQ(lut.bucketIndex(vadd, WidthClass::W8),
                  lut.bucketIndex(vadd, WidthClass::W64));
    }
    EXPECT_NE(lut.bucketIndex(simd(Opcode::VADD, VecType::I8),
                              WidthClass::W64),
              lut.bucketIndex(simd(Opcode::VADD, VecType::I64),
                              WidthClass::W64));
}

TEST_F(SlackLutTest, ConservativeForEveryOpcodeWidthShift)
{
    // The non-speculative guarantee: the LUT estimate, converted to
    // picoseconds at tick granularity, never undercuts the true
    // circuit delay of any member operation.
    for (unsigned o = 0;
         o < static_cast<unsigned>(Opcode::NUM_OPCODES); ++o) {
        const auto op = static_cast<Opcode>(o);
        if (!TimingModel::isSlackEligible(op))
            continue;
        if (isSimd(op)) {
            for (unsigned t = 0; t < 4; ++t) {
                Inst i = simd(op, static_cast<VecType>(t));
                const Tick est = lut.lookupTicks(i, WidthClass::W64);
                EXPECT_GE(clock.ticksToPs(est) + 1e-9,
                          model.trueDelayPs(i, 64))
                    << opcodeName(op) << " type " << t;
            }
            continue;
        }
        const bool can_shift = aluKind(op) == AluKind::Arith;
        for (int s = 0; s < (can_shift ? 5 : 1); ++s) {
            for (unsigned wc = 0; wc < 4; ++wc) {
                Inst i = scalar(op, static_cast<ShiftKind>(s));
                const auto width_class = static_cast<WidthClass>(wc);
                const unsigned bits = widthClassBits(width_class);
                const Tick est = lut.lookupTicks(i, width_class);
                // Every actual width within the class is covered.
                for (unsigned w = 1; w <= bits; w += 7) {
                    EXPECT_GE(clock.ticksToPs(est) + 1e-9,
                              model.trueDelayPs(i, w))
                        << opcodeName(op) << " shift " << s << " w "
                        << w;
                }
            }
        }
    }
}

TEST_F(SlackLutTest, FinerPrecisionNeverLoosensEstimates)
{
    for (unsigned p = 2; p <= 8; ++p) {
        SubCycleClock coarse(p - 1, 500);
        SubCycleClock fine(p, 500);
        SlackLut lut_coarse(model, coarse);
        SlackLut lut_fine(model, fine);
        const Inst add = scalar(Opcode::ADD);
        EXPECT_LE(fine.ticksToPs(lut_fine.lookupTicks(add,
                                                      WidthClass::W64)),
                  coarse.ticksToPs(lut_coarse.lookupTicks(
                      add, WidthClass::W64)) +
                      1e-9);
    }
}

TEST_F(SlackLutTest, NonEligibleLookupPanics)
{
    Inst i;
    i.op = Opcode::MUL;
    EXPECT_THROW(lut.lookupTicks(i, WidthClass::W64), std::logic_error);
}

TEST_F(SlackLutTest, BucketNamesAreDistinct)
{
    std::set<std::string> names;
    for (const SlackBucket &b : lut.buckets())
        names.insert(b.name);
    EXPECT_EQ(names.size(), SlackLut::kNumBuckets);
}

} // namespace
} // namespace redsoc

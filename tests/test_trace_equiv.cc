/**
 * @file
 * Trace-neutrality differential suite: attaching a PipeTracer must
 * not change simulated behaviour in any observable way. For every
 * real workload x scheduler kernel, a traced run's CoreStats — every
 * counter plus the per-op commit-schedule checksum — must be
 * byte-identical to the untraced run's.
 *
 * The same harness also proves the trace itself is kernel-agnostic:
 * the Scan and Event kernels must record identical event streams
 * (the golden-snapshot test in test_trace.cc pins the rendered form;
 * this one covers real workloads at full length).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.h"
#include "trace/pipe_tracer.h"

namespace redsoc {
namespace {

using test::makeTrace;

/** Compare every deterministic CoreStats field (sim_seconds is host
 *  wall clock and intentionally excluded). */
void
expectStatsEqual(const CoreStats &off, const CoreStats &on,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.committed, on.committed);
    EXPECT_EQ(off.fu_stall_cycles, on.fu_stall_cycles);
    EXPECT_EQ(off.recycled_ops, on.recycled_ops);
    EXPECT_EQ(off.two_cycle_holds, on.two_cycle_holds);
    EXPECT_EQ(off.slack_recycled_ticks, on.slack_recycled_ticks);
    EXPECT_EQ(off.egpw_requests, on.egpw_requests);
    EXPECT_EQ(off.egpw_grants, on.egpw_grants);
    EXPECT_EQ(off.egpw_wasted, on.egpw_wasted);
    EXPECT_EQ(off.fused_ops, on.fused_ops);
    EXPECT_EQ(off.la_predictions, on.la_predictions);
    EXPECT_EQ(off.la_mispredictions, on.la_mispredictions);
    EXPECT_EQ(off.width_predictions, on.width_predictions);
    EXPECT_EQ(off.width_aggressive, on.width_aggressive);
    EXPECT_EQ(off.width_conservative, on.width_conservative);
    EXPECT_EQ(off.branch_lookups, on.branch_lookups);
    EXPECT_EQ(off.branch_mispredicts, on.branch_mispredicts);
    EXPECT_EQ(off.loads, on.loads);
    EXPECT_EQ(off.stores, on.stores);
    EXPECT_EQ(off.l1_load_misses, on.l1_load_misses);
    EXPECT_EQ(off.store_forwards, on.store_forwards);
    EXPECT_EQ(off.threshold_min, on.threshold_min);
    EXPECT_EQ(off.threshold_max, on.threshold_max);
    EXPECT_EQ(off.threshold_final, on.threshold_final);
    EXPECT_EQ(off.commit_checksum, on.commit_checksum);
    EXPECT_DOUBLE_EQ(off.expected_chain_length, on.expected_chain_length);

    const Histogram &hs = off.chain_lengths;
    const Histogram &he = on.chain_lengths;
    EXPECT_EQ(hs.maxSample(), he.maxSample());
    EXPECT_EQ(hs.count(), he.count());
    EXPECT_EQ(hs.total(), he.total());
    EXPECT_EQ(hs.sumSquares(), he.sumSquares());
    EXPECT_EQ(hs.rawBuckets(), he.rawBuckets());
}

CoreStats
runKernel(const Trace &trace, CoreConfig cfg, SchedKernel kernel,
          PipeTracer *tracer)
{
    cfg.sched_kernel = kernel;
    OooCore core(std::move(cfg));
    core.setTracer(tracer);
    return core.run(trace);
}

/** Element-wise event-stream comparison (streams can be millions of
 *  events; report the first divergence, not a full dump). */
void
expectEventsEqual(const PipeTracer &scan, const PipeTracer &event,
                  const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_EQ(scan.size(), event.size());
    ASSERT_EQ(scan.dropped(), event.dropped());
    const std::vector<PipeEvent> a = scan.events();
    const std::vector<PipeEvent> b = event.events();
    for (size_t i = 0; i < a.size(); ++i) {
        const bool same = a[i].tick == b[i].tick &&
                          a[i].seq == b[i].seq &&
                          a[i].link == b[i].link &&
                          a[i].kind == b[i].kind && a[i].arg == b[i].arg;
        ASSERT_TRUE(same)
            << "first divergence at event " << i << ": scan={"
            << pipeEventName(a[i].kind) << " seq=" << a[i].seq
            << " tick=" << a[i].tick << "} event={"
            << pipeEventName(b[i].kind) << " seq=" << b[i].seq
            << " tick=" << b[i].tick << "}";
    }
}

// ---------------------------------------------------------------------
// Real workloads x both kernels: tracing is behavior-neutral, and the
// recorded stream is kernel-agnostic.
// ---------------------------------------------------------------------

class TraceNeutrality : public ::testing::TestWithParam<std::string>
{
  protected:
    static SimDriver &sharedDriver()
    {
        static SimDriver driver;
        return driver;
    }
};

TEST_P(TraceNeutrality, TracedRunIsBitIdentical)
{
    const std::string workload = GetParam();
    const Trace &trace = sharedDriver().trace(workload);

    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;

    PipeTracer tracers[2];
    int i = 0;
    for (const SchedKernel kernel :
         {SchedKernel::Scan, SchedKernel::Event}) {
        const std::string what =
            workload + "/" + schedKernelName(kernel);
        const CoreStats off = runKernel(trace, cfg, kernel, nullptr);
        const CoreStats on = runKernel(trace, cfg, kernel, &tracers[i]);
        expectStatsEqual(off, on, what);
        EXPECT_GT(tracers[i].size(), 0u) << what;
        ++i;
    }
    expectEventsEqual(tracers[0], tracers[1], workload + "/kernels");
}

TEST_P(TraceNeutrality, BaselineAndMosNeutralToo)
{
    // The non-ReDSOC modes take different emission paths (no
    // transparent/EGPW events, MOS fusion events): each must be
    // equally neutral.
    const std::string workload = GetParam();
    const Trace &trace = sharedDriver().trace(workload);

    for (const SchedMode mode : {SchedMode::Baseline, SchedMode::MOS}) {
        CoreConfig cfg = coreByName("big");
        cfg.mode = mode;
        PipeTracer tracer;
        const std::string what =
            workload + "/" + schedModeName(mode);
        const CoreStats off =
            runKernel(trace, cfg, SchedKernel::Event, nullptr);
        const CoreStats on =
            runKernel(trace, cfg, SchedKernel::Event, &tracer);
        expectStatsEqual(off, on, what);
        EXPECT_GT(tracer.size(), 0u) << what;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, TraceNeutrality,
                         ::testing::Values("crc", "gsm", "act", "bzip2",
                                           "conv", "xalanc"),
                         [](const auto &pinfo) { return pinfo.param; });

// ---------------------------------------------------------------------
// A disabled tracer records nothing; a detached core stays silent.
// ---------------------------------------------------------------------

TEST(TraceNeutralityUnit, DisabledTracerRecordsNothing)
{
    ProgramBuilder b("trace_equiv");
    test::emitAddChain(b, 32);
    b.halt();
    const Trace trace = makeTrace(b);

    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;

    PipeTracer tracer;
    tracer.setEnabled(false);
    OooCore core(cfg);
    core.setTracer(&tracer);
    (void)core.run(trace);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);

    // Re-enabling records on the next run without a fresh attach.
    tracer.setEnabled(true);
    (void)core.run(trace);
    EXPECT_GT(tracer.size(), 0u);
}

TEST(TraceNeutralityUnit, RingWrapKeepsTailAndCountsDropped)
{
    ProgramBuilder b("trace_equiv");
    test::emitLogicChain(b, 64);
    b.halt();
    const Trace trace = makeTrace(b);

    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;

    PipeTracer full;
    OooCore core(cfg);
    core.setTracer(&full);
    (void)core.run(trace);
    ASSERT_GT(full.size(), 32u);

    PipeTracer small(32);
    core.setTracer(&small);
    (void)core.run(trace);
    EXPECT_EQ(small.size(), 32u);
    EXPECT_EQ(small.dropped(), full.size() - 32);

    // The retained window is exactly the tail of the full stream.
    const std::vector<PipeEvent> all = full.events();
    const std::vector<PipeEvent> tail = small.events();
    for (size_t i = 0; i < tail.size(); ++i) {
        const PipeEvent &want = all[all.size() - tail.size() + i];
        EXPECT_EQ(tail[i].seq, want.seq);
        EXPECT_EQ(tail[i].tick, want.tick);
        EXPECT_EQ(static_cast<int>(tail[i].kind),
                  static_cast<int>(want.kind));
    }
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Multi-core differential verification suite (DESIGN.md §14). The
 * N-core Processor must not perturb the single-core model it wraps:
 *
 *  1. a 1-core Processor in shared-LLC mode is bit-identical to a
 *     plain OooCore run on every CoreStats field and the commit
 *     checksum, across the full sched_grid.h acceptance matrix under
 *     both scheduler kernels;
 *  2. an N-core run is a pure function of (config, traces): racing
 *     several identical Processors on different host threads yields
 *     byte-identical serialized ProcStats;
 *  3. with interference structurally eliminated (LLC far larger than
 *     the combined footprint, DRAM bank queueing off, disjoint
 *     address spaces) each core of a mix commits exactly the schedule
 *     of its solo run — co-runners change nothing;
 *  4. the ProcStats text codec round-trips exactly and rejects
 *     tampered/truncated entries;
 *  5. invalid ProcConfig/HierarchyConfig values are rejected at
 *     construction (fatal() throws std::logic_error).
 */

#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.h"
#include "proc/processor.h"
#include "sched_grid.h"
#include "sim/run_cache.h"

namespace redsoc {
namespace {

using test::differentialConfigs;
using test::randomTrace;
using test::runCore;

// ---------------------------------------------------------------------
// Comparators
// ---------------------------------------------------------------------

/** Every deterministic CoreStats field (sim_seconds is host wall
 *  clock and intentionally excluded). */
void
expectCoreStatsEqual(const CoreStats &a, const CoreStats &b,
                     const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.fu_stall_cycles, b.fu_stall_cycles);
    EXPECT_EQ(a.recycled_ops, b.recycled_ops);
    EXPECT_EQ(a.two_cycle_holds, b.two_cycle_holds);
    EXPECT_EQ(a.slack_recycled_ticks, b.slack_recycled_ticks);
    EXPECT_EQ(a.egpw_requests, b.egpw_requests);
    EXPECT_EQ(a.egpw_grants, b.egpw_grants);
    EXPECT_EQ(a.egpw_wasted, b.egpw_wasted);
    EXPECT_EQ(a.fused_ops, b.fused_ops);
    EXPECT_EQ(a.la_predictions, b.la_predictions);
    EXPECT_EQ(a.la_mispredictions, b.la_mispredictions);
    EXPECT_EQ(a.width_predictions, b.width_predictions);
    EXPECT_EQ(a.width_aggressive, b.width_aggressive);
    EXPECT_EQ(a.width_conservative, b.width_conservative);
    EXPECT_EQ(a.branch_lookups, b.branch_lookups);
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.l1_load_misses, b.l1_load_misses);
    EXPECT_EQ(a.store_forwards, b.store_forwards);
    EXPECT_EQ(a.threshold_min, b.threshold_min);
    EXPECT_EQ(a.threshold_max, b.threshold_max);
    EXPECT_EQ(a.threshold_final, b.threshold_final);
    EXPECT_EQ(a.commit_checksum, b.commit_checksum);
    EXPECT_DOUBLE_EQ(a.expected_chain_length, b.expected_chain_length);

    const Histogram &ha = a.chain_lengths;
    const Histogram &hb = b.chain_lengths;
    EXPECT_EQ(ha.maxSample(), hb.maxSample());
    EXPECT_EQ(ha.count(), hb.count());
    EXPECT_EQ(ha.total(), hb.total());
    EXPECT_EQ(ha.sumSquares(), hb.sumSquares());
    EXPECT_EQ(ha.rawBuckets(), hb.rawBuckets());
}

/** Every LlcCoreStats field. */
void
expectLlcCoreStatsEqual(const LlcCoreStats &a, const LlcCoreStats &b,
                        const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.mshr_merges, b.mshr_merges);
    EXPECT_EQ(a.prefetch_fills, b.prefetch_fills);
    EXPECT_EQ(a.bank_wait_cycles, b.bank_wait_cycles);
    EXPECT_EQ(a.back_invalidations, b.back_invalidations);
    EXPECT_EQ(a.lines_owned, b.lines_owned);
}

/** Every ProcStats field: per-core slices, LLC block, global cycle. */
void
expectProcStatsEqual(const ProcStats &a, const ProcStats &b,
                     const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t i = 0; i < a.cores.size(); ++i)
        expectCoreStatsEqual(a.cores[i], b.cores[i],
                             "core " + std::to_string(i));
    EXPECT_EQ(a.llc.evictions, b.llc.evictions);
    EXPECT_EQ(a.llc.writebacks, b.llc.writebacks);
    ASSERT_EQ(a.llc.per_core.size(), b.llc.per_core.size());
    for (size_t i = 0; i < a.llc.per_core.size(); ++i)
        expectLlcCoreStatsEqual(a.llc.per_core[i], b.llc.per_core[i],
                                "llc core " + std::to_string(i));
}

/** 1-core ProcConfig whose shared LLC has exactly the geometry of
 *  the core template's private L2 — the bit-identity configuration. */
ProcConfig
soloConfig(const CoreConfig &core)
{
    ProcConfig cfg;
    cfg.num_cores = 1;
    cfg.core = core;
    cfg.llc = core.memory.l2;
    cfg.llc.line_bytes = core.memory.l1.line_bytes;
    return cfg;
}

// ---------------------------------------------------------------------
// 1. Single-core bit-identity across the acceptance grid
// ---------------------------------------------------------------------

class SharedLlcBitIdentity : public ::testing::TestWithParam<u64>
{
};

TEST_P(SharedLlcBitIdentity, OneCoreSharedLlcEqualsSeedAcrossGrid)
{
    const u64 seed = GetParam();
    const Trace trace = randomTrace(seed, 600);
    for (const std::string core : {"big", "small"}) {
        for (const auto &[tag, base_cfg] : differentialConfigs(core)) {
            for (SchedKernel kernel :
                 {SchedKernel::Scan, SchedKernel::Event}) {
                CoreConfig cfg = base_cfg;
                cfg.sched_kernel = kernel;
                const CoreStats solo = runCore(trace, cfg);
                Processor proc(soloConfig(cfg));
                const ProcStats pstats = proc.run(trace);
                ASSERT_EQ(pstats.cores.size(), 1u);
                expectCoreStatsEqual(
                    solo, pstats.cores[0],
                    "seed=" + std::to_string(seed) + "/" + core + "/" +
                        tag + "/" + schedKernelName(kernel));
                // Single core: every contention charge is zero by
                // construction (the cross-core-only rule).
                ASSERT_EQ(pstats.llc.per_core.size(), 1u);
                EXPECT_EQ(pstats.llc.per_core[0].mshr_merges, 0u);
                EXPECT_EQ(pstats.llc.per_core[0].bank_wait_cycles, 0u);
                EXPECT_EQ(pstats.llc.per_core[0].back_invalidations,
                          0u);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedLlcBitIdentity,
                         ::testing::Values(11u, 12u, 0xabcdefu));

// ---------------------------------------------------------------------
// 2. Host-thread-count determinism
// ---------------------------------------------------------------------

TEST(ProcDeterminism, RacedProcessorsSerializeIdentically)
{
    // Small LLC + slow banks: contention machinery fully engaged.
    ProcConfig cfg;
    cfg.num_cores = 3;
    cfg.core = configFor("big", SchedMode::ReDSOC);
    cfg.llc = CacheConfig{"llc", 64 * 1024, 4, 64};
    cfg.dram.banks = 2;
    cfg.dram.bank_occupancy = 32;

    const Trace t0 = randomTrace(21, 500);
    const Trace t1 = randomTrace(22, 500);
    const Trace t2 = randomTrace(23, 500);
    const std::vector<const Trace *> mix{&t0, &t1, &t2};

    constexpr unsigned kRacers = 4;
    std::vector<std::string> serialized(kRacers);
    {
        std::vector<std::thread> racers;
        for (unsigned r = 0; r < kRacers; ++r) {
            racers.emplace_back([&, r] {
                Processor proc(cfg);
                ProcStats stats = proc.run(mix);
                // sim_seconds is host wall clock — the one field
                // documented as outside the deterministic result.
                for (CoreStats &core : stats.cores)
                    core.sim_seconds = 0.0;
                serialized[r] = serializeProcStats("race", stats);
            });
        }
        for (std::thread &t : racers)
            t.join();
    }
    for (unsigned r = 1; r < kRacers; ++r)
        EXPECT_EQ(serialized[0], serialized[r]) << "racer " << r;
}

// ---------------------------------------------------------------------
// 3. Interference-free mixes equal solo runs
// ---------------------------------------------------------------------

TEST(ProcInterference, HugeLlcNoBankingMixEqualsSolo)
{
    // 64 MB LLC (footprints are a few KB), bank queueing off,
    // disjoint per-core address spaces: interference is structurally
    // absent, so each core of the mix must commit exactly its solo
    // schedule.
    ProcConfig cfg;
    cfg.num_cores = 2;
    cfg.core = configFor("big", SchedMode::ReDSOC);
    cfg.llc = CacheConfig{"llc", 64 * 1024 * 1024, 16, 64};
    cfg.dram.bank_occupancy = 0;

    const Trace t0 = randomTrace(31, 700);
    const Trace t1 = randomTrace(32, 700);

    std::vector<ProcStats> solo;
    for (const Trace *t : {&t0, &t1}) {
        ProcConfig one = cfg;
        one.num_cores = 1;
        Processor proc(one);
        solo.push_back(proc.run(*t));
    }

    Processor proc(cfg);
    const ProcStats mixed = proc.run({&t0, &t1});
    ASSERT_EQ(mixed.cores.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        expectCoreStatsEqual(solo[i].cores[0], mixed.cores[i],
                             "mixed core " + std::to_string(i));
        // And the LLC charged no cross-core wait to anyone.
        EXPECT_EQ(mixed.llc.per_core[i].mshr_merges, 0u);
        EXPECT_EQ(mixed.llc.per_core[i].bank_wait_cycles, 0u);
        EXPECT_EQ(mixed.llc.per_core[i].back_invalidations, 0u);
    }
    EXPECT_EQ(mixed.llc.evictions, 0u);
}

TEST(ProcInterference, TinyLlcCreatesContention)
{
    // Sanity in the other direction: an undersized LLC with slow
    // banks must actually charge somebody something, or the whole
    // contention model is a no-op and test 3 proves nothing.
    ProcConfig cfg;
    cfg.num_cores = 2;
    cfg.core = configFor("big", SchedMode::ReDSOC);
    cfg.llc = CacheConfig{"llc", 16 * 1024, 2, 64};
    cfg.dram.banks = 1;
    cfg.dram.bank_occupancy = 64;

    const Trace t0 = randomTrace(41, 700);
    const Trace t1 = randomTrace(42, 700);
    Processor proc(cfg);
    const ProcStats mixed = proc.run({&t0, &t1});

    u64 contended = mixed.llc.evictions;
    for (const LlcCoreStats &cs : mixed.llc.per_core)
        contended += cs.bank_wait_cycles + cs.mshr_merges +
                     cs.back_invalidations;
    EXPECT_GT(contended, 0u);
}

TEST(ProcInterference, SharedAddressSpaceMergesInFlightFills)
{
    // Same trace, shared physical address space, DRAM slow enough
    // that the second core reliably lands inside the first core's
    // fill windows: the MSHR merge path must fire.
    ProcConfig cfg;
    cfg.num_cores = 2;
    cfg.core = configFor("big", SchedMode::ReDSOC);
    cfg.core.memory.mem_latency = 400;
    cfg.llc = CacheConfig{"llc", 2 * 1024 * 1024, 16, 64};
    cfg.dram.bank_occupancy = 0;
    cfg.share_address_space = true;

    const Trace t = randomTrace(51, 700);
    Processor proc(cfg);
    const ProcStats mixed = proc.run(t);

    u64 merges = 0;
    for (const LlcCoreStats &cs : mixed.llc.per_core)
        merges += cs.mshr_merges;
    EXPECT_GT(merges, 0u);
}

// ---------------------------------------------------------------------
// 4. ProcStats codec round-trip
// ---------------------------------------------------------------------

TEST(ProcStatsCodec, RoundTripsExactly)
{
    ProcConfig cfg;
    cfg.num_cores = 2;
    cfg.core = configFor("small", SchedMode::ReDSOC);
    cfg.llc = CacheConfig{"llc", 32 * 1024, 4, 64};
    cfg.dram.banks = 2;
    cfg.dram.bank_occupancy = 24;

    const Trace t0 = randomTrace(61, 400);
    const Trace t1 = randomTrace(62, 400);
    Processor proc(cfg);
    const ProcStats stats = proc.run({&t0, &t1});

    const std::string text = serializeProcStats("k1", stats);
    const auto back = deserializeProcStats(text, "k1");
    ASSERT_TRUE(back.has_value());
    expectProcStatsEqual(stats, *back, "round-trip");
    // Byte-stable: serializing the deserialized value reproduces the
    // entry exactly (the determinism harness relies on this).
    EXPECT_EQ(serializeProcStats("k1", *back), text);
}

TEST(ProcStatsCodec, RejectsTamperedEntries)
{
    ProcStats stats;
    stats.cycles = 123;
    stats.cores.resize(2);
    stats.llc.per_core.resize(2);
    stats.llc.evictions = 7;
    const std::string good = serializeProcStats("key-a", stats);

    EXPECT_TRUE(deserializeProcStats(good, "key-a").has_value());
    // Wrong key (hash collision / stale rename).
    EXPECT_FALSE(deserializeProcStats(good, "key-b").has_value());
    // Truncation anywhere (no trailing "end").
    for (size_t cut : {good.size() - 4, good.size() / 2, size_t{10}})
        EXPECT_FALSE(
            deserializeProcStats(good.substr(0, cut), "key-a")
                .has_value())
            << "cut at " << cut;
    // Single-core entries must not parse as multi-core ones.
    const std::string core_entry = serializeStats("key-a", CoreStats{});
    EXPECT_FALSE(deserializeProcStats(core_entry, "key-a").has_value());
    EXPECT_FALSE(deserializeStats(good, "key-a").has_value());
}

TEST(ProcStatsCodec, DiskRoundTripViaRunCache)
{
    char tmpl[] = "/tmp/redsoc_proc_cache_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;

    ProcStats stats;
    stats.cycles = 99;
    stats.cores.resize(1);
    stats.cores[0].committed = 1234;
    stats.llc.per_core.resize(1);
    stats.llc.per_core[0].accesses = 55;

    RunCache cache(dir);
    const std::string key = "mix@cfg#ops=1";
    EXPECT_FALSE(cache.loadProc(key).has_value());
    cache.storeProc(key, stats);
    const auto back = cache.loadProc(key);
    ASSERT_TRUE(back.has_value());
    expectProcStatsEqual(stats, *back, "disk round-trip");
    // Proc entries live in their own namespace: no crosstalk with
    // single-core entries under the same key.
    EXPECT_FALSE(cache.load(key).has_value());
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// 5. Configuration validation
// ---------------------------------------------------------------------

TEST(ProcConfigValidation, RejectsBadConfigs)
{
    const ProcConfig good;
    EXPECT_NO_THROW(validateProcConfig(good));

    ProcConfig zero_cores = good;
    zero_cores.num_cores = 0;
    EXPECT_THROW(validateProcConfig(zero_cores), std::logic_error);

    ProcConfig too_many = good;
    too_many.num_cores = 65;
    EXPECT_THROW(validateProcConfig(too_many), std::logic_error);

    ProcConfig line_mismatch = good;
    line_mismatch.llc.line_bytes = 128;
    EXPECT_THROW(validateProcConfig(line_mismatch), std::logic_error);

    ProcConfig zero_banks = good;
    zero_banks.dram.banks = 0;
    EXPECT_THROW(validateProcConfig(zero_banks), std::logic_error);

    ProcConfig zero_size = good;
    zero_size.llc.size_bytes = 0;
    EXPECT_THROW(validateProcConfig(zero_size), std::logic_error);

    ProcConfig overflow_size = good;
    overflow_size.llc.size_bytes = u64{1} << 40;
    EXPECT_THROW(validateProcConfig(overflow_size), std::logic_error);

    ProcConfig npot_line = good;
    npot_line.llc.line_bytes = 48;
    npot_line.core.memory.l1.line_bytes = 48;
    EXPECT_THROW(validateProcConfig(npot_line), std::logic_error);
}

TEST(HierarchyConfigValidation, RejectsBadConfigs)
{
    HierarchyConfig good;
    EXPECT_NO_THROW(MemHierarchy{good});

    HierarchyConfig zero_l1 = good;
    zero_l1.l1.size_bytes = 0;
    EXPECT_THROW(MemHierarchy{zero_l1}, std::logic_error);

    HierarchyConfig overflow_l2 = good;
    overflow_l2.l2.size_bytes = u64{1} << 40;
    EXPECT_THROW(MemHierarchy{overflow_l2}, std::logic_error);

    HierarchyConfig npot_line = good;
    npot_line.l1.line_bytes = 48;
    EXPECT_THROW(MemHierarchy{npot_line}, std::logic_error);

    HierarchyConfig zero_latency = good;
    zero_latency.l1_latency = 0;
    EXPECT_THROW(MemHierarchy{zero_latency}, std::logic_error);

    HierarchyConfig shrink_scale = good;
    shrink_scale.offcore_latency_scale = 0.5;
    EXPECT_THROW(MemHierarchy{shrink_scale}, std::logic_error);

    HierarchyConfig nan_scale = good;
    nan_scale.offcore_latency_scale =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(MemHierarchy{nan_scale}, std::logic_error);
}

TEST(ProcConfigValidation, ProcessorRunRejectsBadMixes)
{
    ProcConfig cfg;
    cfg.num_cores = 2;
    cfg.core = configFor("small", SchedMode::Baseline);
    Processor proc(cfg);

    const Trace t = randomTrace(71, 100);
    EXPECT_THROW(proc.run(std::vector<const Trace *>{&t}),
                 std::logic_error); // one trace, two cores
    EXPECT_THROW(proc.run(std::vector<const Trace *>{&t, nullptr}),
                 std::logic_error); // null trace
    EXPECT_THROW(proc.setTracer(2, nullptr), std::logic_error);
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Tests for the parallel simulation layer: the fixed thread pool, the
 * concurrency-safe SimDriver (bit-identical results no matter how
 * many threads race on a point), and the persistent on-disk run
 * cache (hit, miss, version invalidation, corrupted-file fallback).
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "helpers.h"
#include "sim/run_cache.h"
#include "sim/thread_pool.h"

namespace fs = std::filesystem;

using namespace redsoc;

namespace {

/** Enough for every test workload to halt (crc is ~99k dynamic
 *  ops), and no more: determinism, not throughput. */
constexpr SeqNum kTestOps = 150'000;

/**
 * Canonical text form of the deterministic architectural result:
 * everything the run cache serializes except the host wall-clock,
 * which legitimately differs run to run.
 */
std::string
canon(CoreStats stats)
{
    stats.sim_seconds = 0.0;
    return serializeStats("canon", stats);
}

std::string
makeTempDir()
{
    std::string tmpl = (fs::temp_directory_path() /
                        "redsoc-cache-test-XXXXXX").string();
    char *dir = ::mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return tmpl;
}

CoreStats
sampleStats()
{
    ProgramBuilder b("chain");
    test::emitLogicChain(b, 200);
    b.halt();
    const Trace trace = test::makeTrace(b);
    return test::runCore(trace, configFor("small", SchedMode::ReDSOC));
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

} // namespace

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> done{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 1000);

    // The pool stays usable after a wait.
    pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 1001);
}

TEST(ThreadPool, WaitRethrowsFirstTaskError)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&done, i] {
            if (i == 3)
                throw std::runtime_error("task failed");
            ++done;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(done.load(), 7); // the remaining tasks still ran
    // The error does not stick to the next batch.
    pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 8);
}

TEST(ParallelDriver, EightThreadsOnOnePointMatchSerial)
{
    const CoreConfig cfg = configFor("small", SchedMode::ReDSOC);

    SimDriver serial(kTestOps);
    const std::string want = canon(serial.run("crc", cfg));

    SimDriver parallel(kTestOps);
    std::vector<CoreStats> got(8);
    {
        std::vector<std::thread> threads;
        for (int i = 0; i < 8; ++i) {
            threads.emplace_back([&parallel, &got, &cfg, i] {
                got[i] = parallel.run("crc", cfg);
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    for (const CoreStats &stats : got)
        EXPECT_EQ(canon(stats), want);
}

TEST(ParallelDriver, BatchMatrixMatchesSerialPointwise)
{
    std::vector<SimDriver::Point> points;
    for (const char *workload : {"crc", "act"}) {
        for (SchedMode mode :
             {SchedMode::Baseline, SchedMode::ReDSOC, SchedMode::MOS}) {
            points.push_back({workload, configFor("medium", mode)});
        }
    }

    SimDriver batch(kTestOps);
    const std::vector<CoreStats> got = batch.runAll(points);
    ASSERT_EQ(got.size(), points.size());

    SimDriver serial(kTestOps);
    for (size_t i = 0; i < points.size(); ++i) {
        const CoreStats &want =
            serial.run(points[i].workload, points[i].config);
        EXPECT_EQ(canon(got[i]), canon(want)) << "point " << i;
    }
}

TEST(RunCache, SerializeRoundTripsExactly)
{
    const CoreStats stats = sampleStats();
    const auto back =
        deserializeStats(serializeStats("some key", stats), "some key");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(serializeStats("k", *back), serializeStats("k", stats));
    EXPECT_EQ(back->chain_lengths.weightedMean(),
              stats.chain_lengths.weightedMean());
}

TEST(RunCache, RejectsKeyMismatch)
{
    const CoreStats stats = sampleStats();
    EXPECT_FALSE(deserializeStats(serializeStats("key a", stats),
                                  "key b").has_value());
}

TEST(RunCache, HitAndMiss)
{
    const std::string dir = makeTempDir();
    RunCache cache(dir);
    EXPECT_FALSE(cache.load("absent").has_value()); // cold miss

    const CoreStats stats = sampleStats();
    cache.store("point", stats);
    const auto hit = cache.load("point");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(serializeStats("k", *hit), serializeStats("k", stats));
    EXPECT_FALSE(cache.load("other point").has_value());

    fs::remove_all(dir);
}

TEST(RunCache, VersionMismatchInvalidates)
{
    const std::string dir = makeTempDir();
    RunCache cache(dir);
    cache.store("point", sampleStats());

    const std::string path = cache.entryPath("point");
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::string want = "v" + std::to_string(RunCache::kFormatVersion);
    const size_t pos = text.find(want);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, want.size(), "v999");
    std::ofstream(path, std::ios::trunc) << text;

    EXPECT_FALSE(cache.load("point").has_value());
    fs::remove_all(dir);
}

TEST(RunCache, CorruptedFileIsAMiss)
{
    const std::string dir = makeTempDir();
    RunCache cache(dir);
    const CoreStats stats = sampleStats();
    cache.store("point", stats);

    // Truncation (a torn write can't happen thanks to the atomic
    // rename, but a corrupted disk file must still be survivable).
    const std::string full = serializeStats("point", stats);
    std::ofstream(cache.entryPath("point"), std::ios::trunc)
        << full.substr(0, full.size() / 2);
    EXPECT_FALSE(cache.load("point").has_value());

    std::ofstream(cache.entryPath("point"), std::ios::trunc)
        << "not a stats file at all";
    EXPECT_FALSE(cache.load("point").has_value());

    fs::remove_all(dir);
}

TEST(RunCache, DriverLoadsStoresAndSurvivesCorruption)
{
    const std::string dir = makeTempDir();
    ScopedEnv env("REDSOC_CACHE_DIR", dir);
    const CoreConfig cfg = configFor("small", SchedMode::Baseline);

    SimDriver first(kTestOps);
    const CoreStats truth = first.run("crc", cfg);
    const std::string key = first.runKey("crc", cfg);
    RunCache cache(dir);
    ASSERT_TRUE(fs::exists(cache.entryPath(key))); // stored on miss

    // Plant a marker in the cached entry: a second driver must serve
    // the disk copy, not resimulate.
    CoreStats marked = truth;
    marked.cycles += 12345;
    cache.store(key, marked);
    SimDriver second(kTestOps);
    EXPECT_EQ(second.run("crc", cfg).cycles, truth.cycles + 12345);

    // Corrupt the entry: a third driver falls back to recomputing
    // (and repairs the cache entry on the way out).
    std::ofstream(cache.entryPath(key), std::ios::trunc) << "garbage";
    SimDriver third(kTestOps);
    EXPECT_EQ(canon(third.run("crc", cfg)), canon(truth));
    const auto repaired = cache.load(key);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(repaired->cycles, truth.cycles);

    fs::remove_all(dir);
}

/**
 * @file
 * Operation-mix (Fig.10) and DVFS power-model tests.
 */

#include <gtest/gtest.h>

#include "power/dvfs.h"
#include "workloads/op_mix.h"
#include "workloads/registry.h"

namespace redsoc {
namespace {

OpMix
mixOf(const std::string &workload)
{
    const Trace trace = traceWorkload(workload);
    const TimingModel timing;
    return computeOpMix(trace, timing);
}

TEST(OpMix, FractionsSumToOne)
{
    for (const char *name : {"bitcnt", "xalanc", "act", "gromacs"}) {
        const OpMix mix = mixOf(name);
        EXPECT_NEAR(mix.total(), 1.0, 1e-9) << name;
    }
}

TEST(OpMix, BitcntIsComputeDominated)
{
    // Fig.10: bitcount has <5% memory ops and ~60% high-slack ALU.
    const OpMix mix = mixOf("bitcnt");
    EXPECT_LT(mix.mem_hl + mix.mem_ll, 0.08);
    EXPECT_GT(mix.alu_hs, 0.45);
}

TEST(OpMix, XalancIsMemoryHeavyWithL1Misses)
{
    const OpMix mix = mixOf("xalanc");
    EXPECT_GT(mix.mem_hl + mix.mem_ll, 0.2);
    EXPECT_GT(mix.mem_hl, 0.03); // scattered tree: real L1 misses
}

TEST(OpMix, ActStreamsThroughSimdAndMemory)
{
    const OpMix mix = mixOf("act");
    EXPECT_GT(mix.simd, 0.10);
    EXPECT_GT(mix.mem_hl, 0.05); // streaming working set misses L1
}

TEST(OpMix, GromacsIsMultiCycleHeavy)
{
    const OpMix mix = mixOf("gromacs");
    EXPECT_GT(mix.other_multi, 0.2); // FP operations
}

TEST(OpMix, MibenchHasMoreHighSlackAluThanSpec)
{
    // The paper: SPEC averages ~30% ALU-HS, MiBench ~60%.
    auto suite_hs = [&](Suite suite) {
        double total = 0;
        const auto names = workloadNames(suite);
        for (const auto &name : names)
            total += mixOf(name).alu_hs;
        return total / asDouble(names.size());
    };
    const double spec = suite_hs(Suite::Spec);
    const double mib = suite_hs(Suite::MiBench);
    EXPECT_GT(mib, spec + 0.1);
}

TEST(Dvfs, VoltageInterpolationIsMonotone)
{
    DvfsModel dvfs;
    double prev = 0.0;
    for (double f = 0.7; f <= 2.01; f += 0.05) {
        const double v = dvfs.voltageAt(f);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_DOUBLE_EQ(dvfs.voltageAt(0.1), dvfs.voltageAt(0.7));
    EXPECT_DOUBLE_EQ(dvfs.voltageAt(3.0), dvfs.voltageAt(2.0));
}

TEST(Dvfs, RelativePowerNormalizedAtPeak)
{
    DvfsModel dvfs;
    EXPECT_DOUBLE_EQ(dvfs.relativePowerAt(2.0), 1.0);
    EXPECT_LT(dvfs.relativePowerAt(1.0), 0.5);
}

TEST(Dvfs, PowerSavingGrowsWithSpeedup)
{
    DvfsModel dvfs;
    EXPECT_DOUBLE_EQ(dvfs.powerSavingForSpeedup(1.0), 0.0);
    const double s10 = dvfs.powerSavingForSpeedup(1.10);
    const double s25 = dvfs.powerSavingForSpeedup(1.25);
    EXPECT_GT(s10, 0.05);
    EXPECT_GT(s25, s10);
    EXPECT_LT(s25, 0.6);
    EXPECT_THROW(dvfs.powerSavingForSpeedup(0.0), std::logic_error);
}

TEST(Dvfs, CustomTableValidation)
{
    EXPECT_THROW(DvfsModel({{1.0, 1.0}}), std::logic_error);
    EXPECT_THROW(DvfsModel({{2.0, 1.2}, {1.0, 1.0}}), std::logic_error);
    DvfsModel ok({{1.0, 1.0}, {2.0, 1.2}});
    EXPECT_NEAR(ok.voltageAt(1.5), 1.1, 1e-9);
}

} // namespace
} // namespace redsoc

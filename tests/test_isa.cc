/**
 * @file
 * Unit tests for the µISA: opcode classification, instruction source
 * derivation, the program builder (labels, fixups, validation) and
 * the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/disasm.h"
#include "isa/opcode.h"

namespace redsoc {
namespace {

TEST(Opcode, FuClassMapping)
{
    EXPECT_EQ(fuClass(Opcode::ADD), FuClass::IntAlu);
    EXPECT_EQ(fuClass(Opcode::AND), FuClass::IntAlu);
    EXPECT_EQ(fuClass(Opcode::MUL), FuClass::IntMul);
    EXPECT_EQ(fuClass(Opcode::SDIV), FuClass::IntDiv);
    EXPECT_EQ(fuClass(Opcode::FADD), FuClass::Fp);
    EXPECT_EQ(fuClass(Opcode::FDIV), FuClass::FpDiv);
    EXPECT_EQ(fuClass(Opcode::LDR), FuClass::MemRead);
    EXPECT_EQ(fuClass(Opcode::VSTR), FuClass::MemWrite);
    EXPECT_EQ(fuClass(Opcode::VADD), FuClass::SimdAlu);
    EXPECT_EQ(fuClass(Opcode::VMLA), FuClass::SimdMul);
    EXPECT_EQ(fuClass(Opcode::BEQZ), FuClass::IntAlu);
}

TEST(Opcode, AluKinds)
{
    EXPECT_EQ(aluKind(Opcode::AND), AluKind::Logic);
    EXPECT_EQ(aluKind(Opcode::TST), AluKind::Logic);
    EXPECT_EQ(aluKind(Opcode::MOV), AluKind::MoveShift);
    EXPECT_EQ(aluKind(Opcode::LSR), AluKind::MoveShift);
    EXPECT_EQ(aluKind(Opcode::ADD), AluKind::Arith);
    EXPECT_EQ(aluKind(Opcode::CMP), AluKind::Arith);
    EXPECT_EQ(aluKind(Opcode::BNEZ), AluKind::Arith);
    EXPECT_EQ(aluKind(Opcode::MUL), AluKind::NotAlu);
}

TEST(Opcode, Predicates)
{
    EXPECT_TRUE(isLoad(Opcode::LDRB));
    EXPECT_TRUE(isStore(Opcode::STRH));
    EXPECT_TRUE(isMem(Opcode::VLDR));
    EXPECT_FALSE(isMem(Opcode::ADD));
    EXPECT_TRUE(isBranch(Opcode::RET));
    EXPECT_TRUE(isCondBranch(Opcode::BLEZ));
    EXPECT_FALSE(isCondBranch(Opcode::B));
    EXPECT_TRUE(isSimd(Opcode::VMUL));
    EXPECT_TRUE(isFp(Opcode::FCVTZS));
}

TEST(Opcode, MemAccessSizes)
{
    EXPECT_EQ(memAccessSize(Opcode::LDR), 8u);
    EXPECT_EQ(memAccessSize(Opcode::LDRW), 4u);
    EXPECT_EQ(memAccessSize(Opcode::LDRH), 2u);
    EXPECT_EQ(memAccessSize(Opcode::STRB), 1u);
    EXPECT_EQ(memAccessSize(Opcode::VLDR), 16u);
    EXPECT_THROW(memAccessSize(Opcode::ADD), std::logic_error);
}

TEST(Opcode, VectorGeometry)
{
    EXPECT_EQ(vecLanes(VecType::I8), 16u);
    EXPECT_EQ(vecLanes(VecType::I16), 8u);
    EXPECT_EQ(vecLanes(VecType::I32), 4u);
    EXPECT_EQ(vecLanes(VecType::I64), 2u);
    EXPECT_EQ(vecElemBits(VecType::I16), 16u);
}

TEST(Opcode, LatencyAndPipelining)
{
    EXPECT_EQ(fuLatency(FuClass::IntAlu), 1u);
    EXPECT_GT(fuLatency(FuClass::IntMul), 1u);
    EXPECT_GT(fuLatency(FuClass::IntDiv), fuLatency(FuClass::IntMul));
    EXPECT_TRUE(fuPipelined(FuClass::IntMul));
    EXPECT_FALSE(fuPipelined(FuClass::IntDiv));
    EXPECT_FALSE(fuPipelined(FuClass::FpDiv));
}

TEST(Inst, SourcesFilterZeroRegAndImm)
{
    Inst i;
    i.op = Opcode::ADD;
    i.dst = x(1);
    i.src1 = x(2);
    i.src2 = kZeroReg;
    EXPECT_EQ(i.numSources(), 1u);
    EXPECT_EQ(i.sources()[0], x(2));

    i.src2 = x(3);
    EXPECT_EQ(i.numSources(), 2u);

    i.use_imm = true; // op2 is the immediate: src2 ignored
    EXPECT_EQ(i.numSources(), 1u);
}

TEST(Inst, DestinationFiltersZeroReg)
{
    Inst i;
    i.op = Opcode::ADD;
    i.dst = kZeroReg;
    EXPECT_EQ(i.destination(), kNoReg);
    i.dst = x(5);
    EXPECT_EQ(i.destination(), x(5));
}

TEST(Inst, ShiftComponentDetection)
{
    Inst i;
    i.op = Opcode::ADD;
    EXPECT_FALSE(i.hasShiftComponent());
    i.op2_shift = ShiftKind::Lsr;
    EXPECT_TRUE(i.hasShiftComponent());

    Inst s;
    s.op = Opcode::LSL;
    EXPECT_TRUE(s.hasShiftComponent());
    Inst m;
    m.op = Opcode::MOV;
    EXPECT_FALSE(m.hasShiftComponent());
}

TEST(Builder, ForwardLabelsAreFixedUp)
{
    ProgramBuilder b("fwd");
    auto skip = b.newLabel();
    b.movImm(x(1), 5);
    b.b(skip);
    b.movImm(x(1), 7); // skipped
    b.bind(skip);
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.inst(1).op, Opcode::B);
    EXPECT_EQ(p.inst(1).target, 3u);
}

TEST(Builder, UnboundLabelIsFatal)
{
    ProgramBuilder b("bad");
    auto l = b.newLabel();
    b.b(l);
    b.halt();
    EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, BranchTargetValidation)
{
    std::vector<Inst> insts(1);
    insts[0].op = Opcode::B;
    insts[0].target = 5; // out of range
    EXPECT_THROW(Program("bad", std::move(insts)), std::logic_error);
}

TEST(Builder, VmlaUsesDestinationAsAccumulator)
{
    ProgramBuilder b("vmla");
    b.vmla(v(0), v(1), v(2), VecType::I16);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.inst(0).src3, v(0));
    EXPECT_EQ(p.inst(0).numSources(), 3u);
}

TEST(Builder, StoreDataTravelsInSrc3)
{
    ProgramBuilder b("st");
    b.store(Opcode::STR, x(4), x(2), 16);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.inst(0).src3, x(4));
    EXPECT_EQ(p.inst(0).src1, x(2));
    EXPECT_EQ(p.inst(0).imm, 16);
}

TEST(Disasm, RendersRepresentativeForms)
{
    Inst add;
    add.op = Opcode::ADD;
    add.dst = x(1);
    add.src1 = x(2);
    add.src2 = x(3);
    EXPECT_EQ(disassemble(add), "ADD x1, x2, x3");

    Inst addi = add;
    addi.use_imm = true;
    addi.imm = 42;
    EXPECT_EQ(disassemble(addi), "ADD x1, x2, #42");

    Inst shifted = add;
    shifted.op2_shift = ShiftKind::Lsr;
    shifted.shamt = 3;
    EXPECT_EQ(disassemble(shifted), "ADD x1, x2, x3 lsr #3");

    Inst ld;
    ld.op = Opcode::LDR;
    ld.dst = x(7);
    ld.src1 = x(8);
    ld.use_imm = true;
    ld.imm = -8;
    EXPECT_EQ(disassemble(ld), "LDR x7, [x8, #-8]");

    Inst vadd;
    vadd.op = Opcode::VADD;
    vadd.dst = v(1);
    vadd.src1 = v(2);
    vadd.src2 = v(3);
    vadd.vtype = VecType::I16;
    EXPECT_EQ(disassemble(vadd), "VADD.i16 v1, v2, v3");
}

TEST(Disasm, BranchForms)
{
    Inst b;
    b.op = Opcode::BEQZ;
    b.src1 = x(4);
    b.target = 12;
    EXPECT_EQ(disassemble(b), "BEQZ x4, @12");
}

} // namespace
} // namespace redsoc

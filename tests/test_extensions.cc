/**
 * @file
 * Tests for the extension features: the Sec.IV-C dynamic slack
 * threshold, the PVT guard-band knob end to end, and the gem5-style
 * statistics export.
 */

#include <gtest/gtest.h>

#include "helpers.h"

namespace redsoc {
namespace {

using test::emitLogicChain;
using test::makeTrace;
using test::runCore;

Trace
chainTrace(unsigned n)
{
    ProgramBuilder b("chain");
    emitLogicChain(b, n);
    b.halt();
    return makeTrace(b);
}

TEST(DynamicThreshold, StillCommitsEverything)
{
    const Trace trace = chainTrace(400);
    CoreConfig cfg = configFor("medium", SchedMode::ReDSOC);
    cfg.dynamic_threshold = true;
    cfg.threshold_epoch = 64;
    const CoreStats stats = runCore(trace, cfg);
    EXPECT_EQ(stats.committed, trace.size());
}

TEST(DynamicThreshold, WalksTheThresholdRange)
{
    const Trace trace = chainTrace(2000);
    CoreConfig cfg = configFor("medium", SchedMode::ReDSOC);
    cfg.dynamic_threshold = true;
    cfg.threshold_epoch = 32;
    cfg.slack_threshold_ticks = 4;
    const CoreStats stats = runCore(trace, cfg);
    // The hill climber actually moved (epochs fired).
    EXPECT_NE(stats.threshold_min, stats.threshold_max);
    EXPECT_LE(stats.threshold_max, 8u);
    EXPECT_LE(stats.threshold_min, 4u);
}

TEST(DynamicThreshold, TracksStaticQualityOnChains)
{
    // On a recycling-friendly chain, adapting from a bad starting
    // point must recover most of the tuned-static performance.
    const Trace trace = chainTrace(3000);

    CoreConfig tuned = configFor("medium", SchedMode::ReDSOC);
    tuned.slack_threshold_ticks = 6;
    const Cycle tuned_cycles = runCore(trace, tuned).cycles;

    CoreConfig bad_static = tuned;
    bad_static.slack_threshold_ticks = 0; // recycling disabled
    const Cycle bad_cycles = runCore(trace, bad_static).cycles;

    CoreConfig dyn = tuned;
    dyn.slack_threshold_ticks = 0; // same bad start...
    dyn.dynamic_threshold = true;  // ...but allowed to adapt
    dyn.threshold_epoch = 64;
    const Cycle dyn_cycles = runCore(trace, dyn).cycles;

    EXPECT_LT(dyn_cycles, bad_cycles); // escaped the bad setting
    // Within 20% of the tuned static optimum.
    EXPECT_LE(dyn_cycles, tuned_cycles + tuned_cycles / 5);
}

TEST(DynamicThreshold, InactiveOutsideRedsocMode)
{
    const Trace trace = chainTrace(300);
    CoreConfig cfg = configFor("medium", SchedMode::Baseline);
    cfg.dynamic_threshold = true;
    cfg.threshold_epoch = 16;
    cfg.slack_threshold_ticks = 5;
    const CoreStats stats = runCore(trace, cfg);
    EXPECT_EQ(stats.threshold_final, 5u); // never adapted
}

TEST(PvtGuardBand, NominalCornerRecyclesMore)
{
    const Trace trace = chainTrace(500);

    auto speedup_at = [&](double derate) {
        CoreConfig base = configFor("big", SchedMode::Baseline);
        CoreConfig red = configFor("big", SchedMode::ReDSOC);
        base.timing.pvt_derate = derate;
        red.timing.pvt_derate = derate;
        const Cycle b = runCore(trace, base).cycles;
        const Cycle r = runCore(trace, red).cycles;
        return static_cast<double>(b) / static_cast<double>(r);
    };

    const double worst_case = speedup_at(1.0);
    const double nominal = speedup_at(0.85);
    // Faster paths -> more recyclable ticks per op -> more speedup.
    EXPECT_GE(nominal, worst_case - 1e-9);
    EXPECT_GT(nominal, 1.0);
}

TEST(PvtGuardBand, BaselineCyclesAreDerateInvariant)
{
    // A conventionally clocked core cannot exploit PVT slack: its
    // cycle count is identical at any derate.
    const Trace trace = chainTrace(300);
    CoreConfig a = configFor("medium", SchedMode::Baseline);
    CoreConfig b = a;
    b.timing.pvt_derate = 0.85;
    EXPECT_EQ(runCore(trace, a).cycles, runCore(trace, b).cycles);
}

TEST(StatsExport, GroupCarriesTheHeadlineNumbers)
{
    const Trace trace = chainTrace(200);
    const CoreStats stats =
        runCore(trace, configFor("medium", SchedMode::ReDSOC));
    const StatGroup group = toStatGroup(stats, "core0");
    EXPECT_DOUBLE_EQ(group.scalar("cycles"),
                     static_cast<double>(stats.cycles));
    EXPECT_DOUBLE_EQ(group.scalar("ipc"), stats.ipc());
    EXPECT_DOUBLE_EQ(group.scalar("recycled_ops"),
                     static_cast<double>(stats.recycled_ops));
    EXPECT_TRUE(group.has("egpw_wasted"));
    EXPECT_TRUE(group.has("expected_chain_length"));
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("core0.ipc"), std::string::npos);
}

} // namespace
} // namespace redsoc

// R11 fixture (clean): every nested acquisition agrees on the
// global order alpha_ -> beta_, so the acquisition graph stays
// acyclic. test_lint.cc additionally swaps the pair inside debit()
// to prove the cycle check notices an inversion.

#include <mutex>

struct Ledger
{
    void credit()
    {
        std::lock_guard<std::mutex> a(alpha_);
        std::lock_guard<std::mutex> b(beta_);
        total_ += 1;
    }

    // The mutation test rewrites alpha_/beta_ tokens on lines 20-24
    // only; keep debit() exactly there.
    void debit()
    {
        std::lock_guard<std::mutex> a(alpha_);
        std::lock_guard<std::mutex> b(beta_);
        total_ -= 1;
    }

    void audit()
    {
        std::scoped_lock both(alpha_, beta_);
        total_ = 0; // clean: one atomic acquisition group
    }

    void migrate()
    {
        std::lock_guard<std::mutex> b(beta_);
        // redsoc-lint: allow(lock-order)
        std::lock_guard<std::mutex> a(alpha_);
        total_ += 2;
    }

    std::mutex alpha_;
    std::mutex beta_;
    long total_ REDSOC_GUARDED_BY(beta_) = 0;
};

// Fixture: critpath-complete (R9) — the dependence-graph builder
// translation unit. The rule wants every FixPipeKind enumerator
// mentioned at least once (consumed or explicitly ignored).
#include "critpath_complete_enum.h"

namespace fixture {

int
consumeEvent(FixPipeKind k)
{
    switch (k) {
    case FixPipeKind::Dispatch: return 1;
    case FixPipeKind::Select: return 2;
    case FixPipeKind::Writeback:
        return 0; // timestamp folded into the select edge: ignored
    default: return 0; // Squash falls through, unhandled
    }
}

} // namespace fixture

// Fixture: cycle-narrow (R3). Not compiled; lexed by test_lint.
#include <cstdint>

namespace fixture {

using Cycle = std::uint64_t;

unsigned
lossyReport(Cycle cycles, Cycle start_tick)
{
    const unsigned c32 = static_cast<unsigned>(cycles);  // line 11: violation
    unsigned window = cycles - start_tick;               // line 12: violation
    window += c32;
    return window;
}

// 64-bit-preserving uses must stay quiet.
unsigned long long
fineReport(Cycle cycles)
{
    const Cycle horizon = cycles + 8;
    return static_cast<unsigned long long>(horizon);
}

} // namespace fixture

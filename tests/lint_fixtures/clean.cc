// Fixture: a clean file built from near-miss constructs — every rule
// must stay quiet here.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

using Cycle = std::uint64_t;

struct CleanConfig
{
    unsigned width = 4;
    std::string name = "clean";
    std::map<std::string, int> weights{};
};

class Clock
{
  public:
    // A member *named* clock is not the C API.
    const Clock &clock() const { return *this; }
    Cycle now() const { return now_; }

  private:
    Cycle now_ = 0;
};

class Holder
{
  public:
    // Constructor member-init lists are not calls either.
    Holder() : clock_(), count_(0) {}

  private:
    Clock clock_;
    unsigned count_;
};

unsigned
busyAt(const std::unordered_map<Cycle, unsigned> &booked, Cycle cycle)
{
    // Lookup (not iteration) of an unordered container is fine, and a
    // cycle passed into a call returning unsigned is not a narrowing.
    const auto it = booked.find(cycle);
    const unsigned busy = it == booked.end() ? 0u : it->second;
    return busy;
}

unsigned long long
widePrint(Cycle cycles)
{
    // 64-bit casts of cycle values are allowed.
    return static_cast<unsigned long long>(cycles);
}

double
meanOf(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs) // not a per-cycle loop
        sum += x;
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

} // namespace fixture

// R10 fixture: lock discipline over the REDSOC_* thread-safety
// annotations. Lexed, never compiled; expected findings are pinned
// to exact lines, so keep line numbers stable when editing.

#include <mutex>

struct Counter
{
    void bumpLocked()
    {
        std::lock_guard<std::mutex> lk(mu_);
        hits_ += 1; // clean: the guard holds mu_
    }

    void bumpRacy()
    {
        hits_ += 1; // fires: mu_ not held
    }

    void windowed()
    {
        std::unique_lock<std::mutex> lk(mu_);
        hits_ += 1; // clean
        lk.unlock();
        hits_ += 1; // fires: inside the unlock window
        lk.lock();
        hits_ += 1; // clean again
    }

    void drainLocked() REDSOC_REQUIRES(mu_)
    {
        hits_ = 0; // clean: held by caller contract
    }

    void callers()
    {
        drainLocked(); // fires: REQUIRES(mu_) not held here
        std::lock_guard<std::mutex> lk(mu_);
        drainLocked(); // clean
        rebalance();   // fires: EXCLUDES(mu_) while holding it
    }

    void rebalance() REDSOC_EXCLUDES(mu_)
    {
        std::lock_guard<std::mutex> lk(mu_);
        hits_ += 2; // clean
    }

    void tolerated()
    {
        hits_ += 3; // redsoc-lint: allow(guarded-by)
    }

    std::mutex mu_;
    long hits_ REDSOC_GUARDED_BY(mu_) = 0;
    long lossy_ REDSOC_NOT_GUARDED = 0;
};

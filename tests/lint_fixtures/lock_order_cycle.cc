// R11 fixture (firing): an inverted two-lock pair plus a
// double-acquire. Expected findings are pinned to exact lines.

#include <mutex>

struct Deadlocky
{
    void forward()
    {
        std::lock_guard<std::mutex> a(first_);
        std::lock_guard<std::mutex> b(second_); // edge first->second
    }

    void backward()
    {
        std::lock_guard<std::mutex> b(second_);
        std::lock_guard<std::mutex> a(first_); // edge second->first
    }

    void reenter()
    {
        first_.lock();
        std::lock_guard<std::mutex> again(first_); // double-acquire
        first_.unlock();
    }

    std::mutex first_;
    std::mutex second_;
};

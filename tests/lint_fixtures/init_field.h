// Fixture: init-field (R1). Excluded from the build and from tree
// lint runs; test_lint lexes it directly.
#pragma once
#include <array>
#include <string>

namespace fixture {

struct GoodConfig
{
    unsigned width = 4;
    std::string name = "ok";
    std::array<int, 3> lanes{0, 1, 2};
    double scale{1.0};
};

struct BadConfig
{
    unsigned width = 4;
    unsigned depth;          // line 20: violation
    bool enable_thing;       // line 21: violation
    double scale = 1.0;
};

struct BadStats
{
    unsigned long long committed = 0;
    unsigned long long cycles;     // line 28: violation
    double ipc() const { return 0.0; } // functions are not fields
    static constexpr int kLimit = 4;   // statics are skipped
};

// Not *Config / *Stats: uninitialized members are fine here.
struct ScratchEntry
{
    unsigned seq;
    bool valid;
};

} // namespace fixture

// Fixture: ptr-key-order (R2). Not compiled; lexed by test_lint.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Node
{
    int id = 0;
};

std::map<Node *, int> rank_by_node;        // line 13: violation
std::set<const Node *> visited;            // line 14: violation

// Value-keyed containers are deterministic.
std::map<std::string, int> rank_by_name;
std::map<int, Node *> node_by_id;          // pointer *values* are fine

} // namespace fixture

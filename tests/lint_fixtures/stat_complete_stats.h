// Fixture: stat-complete (R4) — the stats struct. Paired with
// stat_complete_serializer.cc / stat_complete_comparator.cc.
#pragma once

namespace fixture {

struct FixStats
{
    unsigned long long cycles = 0;     // everywhere: clean
    unsigned long long committed = 0;  // everywhere: clean
    unsigned long long dropped = 0;    // line 11: not serialized
    unsigned long long skipped = 0;    // line 12: not compared
    unsigned long long half_cached = 0; // line 13: serialized but
                                        // never deserialized
    // Exempted by design (wall-clock time differs between
    // bit-identical runs).
    double wall_seconds = 0.0; // redsoc-lint: allow(stat-complete)
};

} // namespace fixture

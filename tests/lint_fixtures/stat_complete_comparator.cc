// Fixture: stat-complete (R4) — the equivalence-comparator side.
#include "stat_complete_stats.h"

namespace fixture {

bool
statsEqual(const FixStats &a, const FixStats &b)
{
    return a.cycles == b.cycles && a.committed == b.committed &&
           a.dropped == b.dropped && a.half_cached == b.half_cached;
    // 'skipped' never compared.
}

} // namespace fixture

// Fixture: audit-complete (R6) — the invariant catalogue. Paired
// with audit_complete_tests.cc.
#pragma once

namespace fixture {

enum class FixInvariant : unsigned char {
    AgeOrder,    // line 8: exercised by a test: clean
    CiBound = 3, // line 9: initializer must not confuse the parser
    Leftover,    // line 10: no test mentions it
    // Exempted by design (only reachable through the e2e run).
    Sweep, // redsoc-lint: allow(audit-complete)
    NUM,   // count sentinel: always skipped
};

} // namespace fixture

// Fixture: trace-complete (R5) — the exporter translation unit. The
// rule wants every FixEventKind enumerator mentioned at least twice
// (once per exporter switch).
#include "trace_complete_enum.h"

namespace fixture {

int
exportAlpha(FixEventKind k)
{
    switch (k) {
    case FixEventKind::Fetch: return 1;
    case FixEventKind::Issue: return 2;
    case FixEventKind::Retire: return 3; // only mention of Retire
    default: return 0;
    }
}

int
exportBeta(FixEventKind k)
{
    switch (k) {
    case FixEventKind::Fetch: return 10;
    case FixEventKind::Issue: return 20;
    default: return 0; // Retire and Squash fall through, uncovered
    }
}

} // namespace fixture

// hot-alloc (R8) fixture: heap allocation inside per-cycle scheduler
// functions. The test lexes this file under a pretend src/core/ path.
#include <functional>
#include <vector>

struct Core
{
    std::vector<int> lanes_;
    std::vector<int> scratch_;
    std::vector<int> log_;

    Core() { scratch_.reserve(64); }

    void run() { lanes_.resize(1024); }

    void issuePhase()
    {
        int *p = new int(7);            // line 18: new
        log_.push_back(*p);             // line 19: unreserved growth
        scratch_.push_back(3);          // reserved in ctor: clean
        std::function<int(int)> f =     // line 21: type erasure
            [](int x) { return x; };
        (void)f(2);
        delete p;
    }

    void evalConventional()
    {
        // redsoc-lint: allow(hot-alloc)
        log_.emplace_back(9);           // suppressed
    }

    void coldReport()
    {
        log_.push_back(1); // not a hot function: clean
    }
};

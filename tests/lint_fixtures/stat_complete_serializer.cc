// Fixture: stat-complete (R4) — the serializer side. A field counts
// as covered only when it appears at least twice (serialize AND
// deserialize).
#include "stat_complete_stats.h"

#include <sstream>
#include <string>

namespace fixture {

std::string
serialize(const FixStats &s)
{
    std::ostringstream os;
    os << "cycles " << s.cycles << '\n';
    os << "committed " << s.committed << '\n';
    os << "skipped " << s.skipped << '\n';
    os << "half_cached " << s.half_cached << '\n';
    // 'dropped' forgotten entirely.
    return os.str();
}

FixStats
deserialize(std::istringstream &in)
{
    FixStats s;
    std::string tag;
    in >> tag >> s.cycles;
    in >> tag >> s.committed;
    in >> tag >> s.skipped;
    // 'half_cached' forgotten here: present only once in this file.
    return s;
}

} // namespace fixture

// Fixture: critpath-complete (R9) — the event-kind enum. Paired with
// critpath_complete_builder.cc.
#pragma once

namespace fixture {

enum class FixPipeKind : unsigned char {
    Dispatch,   // line 8: consumed by the builder switch: clean
    Select = 2, // line 9: initializer must not confuse the parser
    Writeback,  // line 10: explicitly ignored by the builder: clean
    Squash,     // line 11: never mentioned by the builder
    // Exempted by design (visualization-only kind).
    Heat, // redsoc-lint: allow(critpath-complete)
    NUM,  // count sentinel: always skipped
};

} // namespace fixture

// Fixture: float-accum (R3). Not compiled; lexed by test_lint.
#include <cstdint>

namespace fixture {

using Cycle = std::uint64_t;

double
perCycleEnergy(Cycle end_cycle)
{
    double energy = 0.0;
    for (Cycle c = 0; c < end_cycle; ++c) {
        energy += 0.125;              // line 13: violation
    }

    // Integer accumulation in the same loop shape is fine.
    std::uint64_t ticks = 0;
    for (Cycle c = 0; c < end_cycle; ++c)
        ticks += 1;

    // Float accumulation outside a per-cycle loop is fine.
    double mean = 0.0;
    for (int i = 0; i < 8; ++i)
        mean += 0.5;

    return energy + mean + static_cast<double>(ticks);
}

} // namespace fixture

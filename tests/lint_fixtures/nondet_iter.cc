// Fixture: nondet-iter (R2). Not compiled; lexed by test_lint.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void
dumpAll()
{
    std::unordered_map<unsigned, double> table;
    std::unordered_set<unsigned> seen;

    for (const auto &kv : table)      // line 14: violation
        std::printf("%u %f\n", kv.first, kv.second);

    for (unsigned v : seen)           // line 17: violation
        std::printf("%u\n", v);

    // Lookup without iteration is fine.
    if (table.count(3) != 0 && seen.count(4) != 0)
        std::printf("present\n");
}

} // namespace fixture

// Fixture: suppression comments. Every violation here is allowed
// except the last one, whose allow() names the wrong rule.
#include <cstdlib>
#include <cstdint>

namespace fixture {

using Cycle = std::uint64_t;

struct PartialConfig
{
    unsigned width = 4;
    // Deliberate: documented by the preceding-line form.
    // redsoc-lint: allow(init-field)
    unsigned depth;
    bool flag; // redsoc-lint: allow(init-field)
};

unsigned
seeded(Cycle cycles)
{
    unsigned s = std::rand(); // redsoc-lint: allow(nondet-api)
    // redsoc-lint: allow(cycle-narrow, nondet-api)
    s += static_cast<unsigned>(cycles) + std::rand();
    s += std::rand(); // redsoc-lint: allow(cycle-narrow)  <- wrong id:
                      // line 25 must still fire nondet-api
    return s;
}

} // namespace fixture

// Fixture: trace-complete (R5) — the event-kind enum. Paired with
// trace_complete_exporter.cc.
#pragma once

namespace fixture {

enum class FixEventKind : unsigned char {
    Fetch,      // line 8: in both exporter switches: clean
    Issue = 2,  // line 9: initializer must not confuse the parser
    Retire,     // line 10: only in one exporter switch
    Squash,     // line 11: in neither exporter switch
    // Exempted by design (debug-only kind, intentionally unexported).
    Probe, // redsoc-lint: allow(trace-complete)
    NUM,   // count sentinel: always skipped
};

} // namespace fixture

// R12 fixture: nondeterministic values must not flow into
// determinism sinks (*Stats fields). Lexed, never compiled;
// expected findings are pinned to exact lines.

#include <chrono>
#include <unordered_map>

struct FixStats
{
    unsigned long committed = 0;
    unsigned long retired = 0;
    double sim_seconds = 0.0;
};

void
collect(FixStats &st)
{
    long ticks = std::chrono::steady_clock::now()
                     .time_since_epoch()
                     .count();
    long warped = ticks / 3;
    st.retired = warped; // fires: now() through ticks and warped
    warped = 12;
    st.retired = warped; // clean: the overwrite killed the taint
    st.sim_seconds = 0.25; // clean: the designated wall-clock stat
    long elapsed = st.sim_seconds;
    st.committed += elapsed; // fires: wall-clock stat readback
    st.retired = ticks; // redsoc-lint: allow(nondet-taint)
}

void
tally(FixStats &st, const std::unordered_map<int, int> &bank)
{
    // redsoc-lint: allow(nondet-iter)
    for (const auto &[slot, credit] : bank) {
        st.committed += credit; // fires: unordered iteration order
    }
}

void
fingerprint(FixStats &st)
{
    auto key = reinterpret_cast<unsigned long>(&st);
    st.retired = key; // fires: pointer-to-integer cast
}

// Fixture: audit-complete (R6) — the test translation unit. The
// rule wants every FixInvariant enumerator mentioned at least once
// (each runtime invariant check needs a corrupting unit test).
#include "audit_complete_enum.h"

namespace fixture {

int
testAgeOrderFires()
{
    return static_cast<int>(FixInvariant::AgeOrder);
}

int
testCiBoundFires()
{
    return static_cast<int>(FixInvariant::CiBound);
}

} // namespace fixture

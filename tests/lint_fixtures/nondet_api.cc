// Fixture: nondet-api (R2). Not compiled; lexed by test_lint.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned long long
badSeed()
{
    std::random_device rd;            // line 11: violation
    unsigned seed = std::rand();      // line 12: violation
    seed += static_cast<unsigned>(time(nullptr)); // line 13: violation
    srand(seed);                      // line 14: violation
    return seed;
}

} // namespace fixture

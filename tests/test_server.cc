/**
 * @file
 * Tests for the sweep server (src/server/, DESIGN.md §15) and the
 * run-cache failure-path hardening that ships with it:
 *
 *  1. wire protocol: strict JSON parse/quote round trips;
 *  2. config codec: every grid config survives text round trip with
 *     an identical cache fingerprint;
 *  3. MpscFreeStack: concurrent push / single harvest loses nothing
 *     and never double-queues a node;
 *  4. ShardedResultCache: claim/publish dedup, LRU eviction into the
 *     recycle stack, failure retry;
 *  5. JobQueue: all-or-nothing backpressure, discard, slot recycling;
 *  6. server differential: a real daemon (in-process SweepServer +
 *     SweepClient over AF_UNIX) returns bit-identical stats to a
 *     local SimDriver across the full scheduler acceptance grid,
 *     core and multi-core points alike;
 *  7. offload: REDSOC_SWEEP_SERVER makes SimDriver route cache
 *     misses through the daemon, transparently and bit-identically;
 *  8. run-cache hardening: multi-process store races leave no torn
 *     files and no stale .tmp-* litter, interrupted sweeps leave
 *     every cache entry readable, stale staging files are GC'd.
 *
 * This binary has its own main(): the multi-process tests re-exec
 * /proc/self/exe in child modes selected by REDSOC_TEST_CHILD.
 */

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/shutdown.h"
#include "helpers.h"
#include "sched_grid.h"
#include "server/config_codec.h"
#include "server/job_queue.h"
#include "server/offload.h"
#include "server/recycle_queue.h"
#include "server/shard_cache.h"
#include "server/sweep_client.h"
#include "server/sweep_server.h"
#include "server/wire.h"
#include "sim/driver.h"
#include "sim/run_cache.h"

namespace fs = std::filesystem;

using namespace redsoc;

namespace {

constexpr SeqNum kTestOps = 150'000;

std::string
canon(CoreStats stats)
{
    stats.sim_seconds = 0.0;
    return serializeStats("canon", stats);
}

std::string
canonProc(ProcStats stats)
{
    for (CoreStats &core : stats.cores)
        core.sim_seconds = 0.0;
    return serializeProcStats("canon", stats);
}

std::string
makeTempDir()
{
    std::string tmpl = (fs::temp_directory_path() /
                        "redsoc-server-test-XXXXXX").string();
    char *dir = ::mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return tmpl;
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** Short AF_UNIX path (sun_path is ~108 bytes; /tmp keeps it safe). */
std::string
makeSocketPath()
{
    static std::atomic<unsigned> counter{0};
    return (fs::temp_directory_path() /
            ("redsoc-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)) + ".sock"))
        .string();
}

/** Deterministic stats that differ per variant (store-race payloads
 *  must be distinguishable byte-for-byte). */
CoreStats
statsVariant(unsigned variant)
{
    ProgramBuilder b("variant");
    test::emitLogicChain(b, 100 + 50 * variant);
    b.halt();
    const Trace trace = test::makeTrace(b);
    return test::runCore(trace, configFor("small", SchedMode::ReDSOC));
}

/** Fork + re-exec this binary in @p mode with extra environment. */
pid_t
spawnChild(const std::string &mode,
           const std::vector<std::pair<std::string, std::string>> &env)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ::setenv("REDSOC_TEST_CHILD", mode.c_str(), 1);
    for (const auto &kv : env)
        ::setenv(kv.first.c_str(), kv.second.c_str(), 1);
    ::execl("/proc/self/exe", "test_server_child",
            static_cast<char *>(nullptr));
    ::_exit(127);
}

int
waitChild(pid_t pid)
{
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

unsigned
countTmpFiles(const std::string &dir)
{
    unsigned n = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().rfind(".tmp-", 0) == 0)
            ++n;
    return n;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

// ---------------------------------------------------------------------
// 1. Wire protocol
// ---------------------------------------------------------------------

TEST(Wire, ParsesObjectsArraysAndScalars)
{
    const auto v = parseJson(
        "{\"op\":\"submit\",\"n\":42,\"neg\":-1.5,\"b\":true,"
        "\"s\":\"a\\nb\\u0041\",\"arr\":[1,2,3],\"nul\":null}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->getStr("op", ""), "submit");
    EXPECT_EQ(v->getU64("n", 0), 42u);
    EXPECT_TRUE(v->getBool("b", false));
    EXPECT_EQ(v->getStr("s", ""), "a\nbA");
    const JsonValue *arr = v->get("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->arr.size(), 3u);
    EXPECT_EQ(arr->arr[1].uint, 2u);
}

TEST(Wire, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").has_value());
    EXPECT_FALSE(parseJson("{").has_value());
    EXPECT_FALSE(parseJson("{\"a\":1} trailing").has_value());
    EXPECT_FALSE(parseJson("{'a':1}").has_value());
    EXPECT_FALSE(parseJson("{\"a\":01}").has_value() &&
                 parseJson("{\"a\":01}")->get("a") == nullptr);
}

TEST(Wire, QuoteRoundTripsThroughParse)
{
    const std::string nasty =
        "line1\nline2\ttab \"quoted\" back\\slash \x01";
    const auto v = parseJson("{\"s\":" + jsonQuote(nasty) + "}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->getStr("s", ""), nasty);
}

// ---------------------------------------------------------------------
// 2. Config codec
// ---------------------------------------------------------------------

TEST(ConfigCodec, GridConfigsRoundTripWithIdenticalFingerprint)
{
    for (const std::string core : {"small", "medium", "big"}) {
        for (const auto &[tag, cfg] : test::differentialConfigs(core)) {
            const std::string text = serializeCoreConfig(cfg);
            const auto back = deserializeCoreConfig(text);
            ASSERT_TRUE(back.has_value()) << core << "/" << tag;
            EXPECT_EQ(SimDriver::configKey(*back),
                      SimDriver::configKey(cfg))
                << core << "/" << tag;
        }
    }
}

TEST(ConfigCodec, ProcConfigRoundTrips)
{
    ProcConfig cfg;
    cfg.num_cores = 3;
    cfg.core = configFor("small", SchedMode::ReDSOC);
    cfg.llc.size_bytes = 512 * 1024;
    cfg.dram.banks = 4;
    cfg.share_address_space = true;
    const auto back = deserializeProcConfig(serializeProcConfig(cfg));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(SimDriver::procConfigKey(*back),
              SimDriver::procConfigKey(cfg));
}

TEST(ConfigCodec, RejectsTruncatedAndTrailingText)
{
    const std::string text =
        serializeCoreConfig(configFor("small", SchedMode::ReDSOC));
    EXPECT_FALSE(deserializeCoreConfig("").has_value());
    EXPECT_FALSE(
        deserializeCoreConfig(text.substr(0, text.size() / 2))
            .has_value());
    EXPECT_FALSE(deserializeCoreConfig(text + "extra 1\n").has_value());
    EXPECT_FALSE(deserializeProcConfig(text).has_value());
}

// ---------------------------------------------------------------------
// 3. MpscFreeStack
// ---------------------------------------------------------------------

namespace {

struct TestNode
{
    unsigned id = 0;
    TestNode *recycle_next = nullptr;
    std::atomic<bool> recycle_queued{false};
};

} // namespace

TEST(MpscFreeStack, ConcurrentPushersSingleHarvester)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 500;
    std::vector<std::unique_ptr<TestNode>> nodes;
    for (unsigned i = 0; i < kThreads * kPerThread; ++i) {
        nodes.push_back(std::make_unique<TestNode>());
        nodes.back()->id = i;
    }

    MpscFreeStack<TestNode> stack;
    std::atomic<unsigned> harvested{0};
    std::atomic<bool> done{0};

    std::vector<std::thread> pushers;
    for (unsigned t = 0; t < kThreads; ++t) {
        pushers.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                TestNode *n = nodes[t * kPerThread + i].get();
                stack.push(n);
                // Double-push must be a no-op while queued.
                stack.push(n);
            }
        });
    }
    // Single consumer racing the pushers, as the shard lock holder
    // does: harvest chains and count.
    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire) || !stack.empty()) {
            for (TestNode *n = stack.harvest(); n != nullptr;) {
                TestNode *next = n->recycle_next;
                n->recycle_queued.store(false,
                                        std::memory_order_release);
                harvested.fetch_add(1);
                n = next;
            }
        }
    });
    for (auto &t : pushers)
        t.join();
    done.store(true, std::memory_order_release);
    consumer.join();

    EXPECT_EQ(harvested.load(), kThreads * kPerThread);
    EXPECT_TRUE(stack.empty());
}

// ---------------------------------------------------------------------
// 4. ShardedResultCache
// ---------------------------------------------------------------------

TEST(ShardCache, FirstClaimsLaterWaitersShareTheFuture)
{
    ShardedResultCache cache({4, 16});
    auto first = cache.lookupOrClaim("k");
    ASSERT_TRUE(first.claimed);
    auto second = cache.lookupOrClaim("k");
    EXPECT_FALSE(second.claimed);
    cache.publish("k", "payload");
    EXPECT_EQ(first.future.get(), "payload");
    EXPECT_EQ(second.future.get(), "payload");

    const auto c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.entries, 1u);
}

TEST(ShardCache, EvictsLruIntoRecycleStackAndReusesNodes)
{
    // One shard, capacity 2: publishing 5 keys must evict 3 in LRU
    // order, and their nodes must come back through harvest.
    ShardedResultCache cache({1, 2});
    for (int i = 0; i < 5; ++i) {
        const std::string key = "k" + std::to_string(i);
        auto claim = cache.lookupOrClaim(key);
        ASSERT_TRUE(claim.claimed);
        cache.publish(key, "v" + std::to_string(i));
    }
    auto c = cache.counters();
    EXPECT_EQ(c.evictions, 3u);
    EXPECT_EQ(c.recycled, 3u);
    EXPECT_EQ(c.entries, 2u);
    // Nodes 4 and 5 were allocated after the first eviction round
    // began, so at least one allocation must have been served from
    // the harvested free list rather than fresh memory.
    EXPECT_GT(c.harvested, 0u);
    EXPECT_LT(c.allocated, 5u);

    // The survivors are the MRU two.
    EXPECT_FALSE(cache.lookupOrClaim("k4").claimed);
    EXPECT_FALSE(cache.lookupOrClaim("k3").claimed);
    // An evicted key re-claims (recomputes).
    EXPECT_TRUE(cache.lookupOrClaim("k0").claimed);
    cache.publish("k0", "again");
}

TEST(ShardCache, FailedClaimRetriesCleanly)
{
    ShardedResultCache cache({2, 8});
    auto claim = cache.lookupOrClaim("bad");
    ASSERT_TRUE(claim.claimed);
    auto waiter = cache.lookupOrClaim("bad");
    cache.fail("bad", std::make_exception_ptr(
                          std::runtime_error("simulated failure")));
    EXPECT_THROW(claim.future.get(), std::runtime_error);
    EXPECT_THROW(waiter.future.get(), std::runtime_error);

    // The key is gone: the next request claims fresh and can succeed.
    auto retry = cache.lookupOrClaim("bad");
    ASSERT_TRUE(retry.claimed);
    cache.publish("bad", "recovered");
    EXPECT_EQ(retry.future.get(), "recovered");
    EXPECT_EQ(cache.counters().failures, 1u);
}

// ---------------------------------------------------------------------
// 5. JobQueue
// ---------------------------------------------------------------------

TEST(JobQueue, BatchBackpressureIsAllOrNothing)
{
    // One worker parked on a gate so the backlog is controllable.
    JobQueue queue({4, 1});
    std::atomic<bool> gate{false};
    std::atomic<int> ran{0};
    auto job = [&] {
        while (!gate.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
    };

    std::vector<std::function<void()>> first(4, job);
    EXPECT_TRUE(queue.tryEnqueue(std::move(first)));
    // Backlog is 3 or 4 (the worker may have popped one): a batch of
    // 2 cannot fit under capacity 4 in either case.
    std::vector<std::function<void()>> second(2, job);
    EXPECT_FALSE(queue.tryEnqueue(std::move(second)));
    EXPECT_EQ(queue.counters().rejected_batches, 1u);

    gate.store(true);
    queue.drain();
    EXPECT_EQ(ran.load(), 4);
    // After draining there is room again.
    std::vector<std::function<void()>> third(2, job);
    EXPECT_TRUE(queue.tryEnqueue(std::move(third)));
    queue.drain();
    EXPECT_EQ(ran.load(), 6);
    const auto c = queue.counters();
    EXPECT_EQ(c.executed, 6u);
    EXPECT_EQ(c.queued, 0u);
    // Completed slots went through the lock-free recycle stack and
    // the second submit harvested them.
    EXPECT_EQ(c.slots_recycled, 6u);
    EXPECT_GT(c.slots_harvested, 0u);
    EXPECT_LT(c.slots_allocated, 7u);
}

TEST(JobQueue, DiscardPendingDropsOnlyQueuedJobs)
{
    JobQueue queue({8, 1});
    std::atomic<bool> gate{false};
    std::atomic<int> ran{0};
    // A destroyed-without-running closure must release resources: model
    // a claim guard with a shared_ptr whose deleter counts.
    std::atomic<int> destroyed{0};
    struct Guard
    {
        std::atomic<int> *counter;
        ~Guard() { counter->fetch_add(1); }
    };

    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 5; ++i) {
        auto guard = std::make_shared<Guard>();
        guard->counter = &destroyed;
        jobs.push_back([&, guard] {
            while (!gate.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            ++ran;
        });
    }
    ASSERT_TRUE(queue.tryEnqueue(std::move(jobs)));
    jobs.clear();

    // Give the single worker time to start job 0, then drop the rest.
    while (queue.counters().running == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const size_t dropped = queue.discardPending();
    EXPECT_EQ(dropped, 4u);
    EXPECT_EQ(destroyed.load(), 4); // queued closures destroyed now
    gate.store(true);
    queue.drain();
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(destroyed.load(), 5);
    EXPECT_EQ(queue.counters().discarded, 4u);
}

TEST(JobQueue, CloseRejectsNewWorkButDrainsBacklog)
{
    JobQueue queue({8, 2});
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> jobs(3, [&] { ++ran; });
    ASSERT_TRUE(queue.tryEnqueue(std::move(jobs)));
    queue.close();
    std::vector<std::function<void()>> late(1, [&] { ++ran; });
    EXPECT_FALSE(queue.tryEnqueue(std::move(late)));
    queue.drain();
    EXPECT_EQ(ran.load(), 3);
}

// ---------------------------------------------------------------------
// 6. Server differential (the tentpole acceptance test)
// ---------------------------------------------------------------------

namespace {

/** In-process daemon + connected client for one test. */
struct ServerFixture
{
    explicit ServerFixture(SweepServerOptions opts)
    {
        if (opts.socket_path.empty())
            opts.socket_path = makeSocketPath();
        server = std::make_unique<SweepServer>(opts);
        EXPECT_TRUE(server->start());
        client = SweepClient::connect(opts.socket_path);
        EXPECT_NE(client, nullptr);
    }

    ~ServerFixture()
    {
        client.reset();
        if (server) {
            server->closeQueue();
            server->waitQueueIdleFor(30'000);
            server->stop();
        }
    }

    std::unique_ptr<SweepServer> server;
    std::unique_ptr<SweepClient> client;
};

} // namespace

TEST(SweepServer, PingReportsProtocolVersion)
{
    SweepServerOptions opts;
    opts.workers = 1;
    ServerFixture fx(opts);
    ASSERT_NE(fx.client, nullptr);
    EXPECT_TRUE(fx.client->ping());
}

TEST(SweepServer, DifferentialAcrossFullSchedulerGrid)
{
    SweepServerOptions opts;
    opts.workers = 4;
    ServerFixture fx(opts);
    ASSERT_NE(fx.client, nullptr);

    // Submit the whole acceptance grid as one batch...
    const auto grid = test::differentialConfigs("small");
    std::vector<SweepClient::PointRequest> points;
    for (const auto &[tag, cfg] : grid) {
        SweepClient::PointRequest p;
        p.workload = "crc";
        p.config_text = serializeCoreConfig(cfg);
        p.max_ops = kTestOps;
        points.push_back(std::move(p));
    }
    const auto results = fx.client->runBatch(points);
    ASSERT_TRUE(results.has_value());
    ASSERT_EQ(results->size(), grid.size());

    // ...and require every point bit-identical to an in-process run.
    SimDriver local(kTestOps);
    for (size_t i = 0; i < grid.size(); ++i) {
        const auto &[tag, cfg] = grid[i];
        ASSERT_TRUE((*results)[i].ok)
            << tag << ": " << (*results)[i].error;
        const auto remote =
            deserializeStats((*results)[i].payload, (*results)[i].key);
        ASSERT_TRUE(remote.has_value()) << tag;
        EXPECT_EQ(canon(*remote), canon(local.run("crc", cfg))) << tag;
    }

    // Resubmitting the same batch is served from the shard cache.
    const auto again = fx.client->runBatch(points);
    ASSERT_TRUE(again.has_value());
    const std::string stats = fx.client->statsJson();
    const auto parsed = parseJson(stats);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->getU64("cache_hits", 0), grid.size());
    EXPECT_EQ(parsed->getU64("cache_misses", 1), grid.size());
}

TEST(SweepServer, ProcPointMatchesLocalProcessorRun)
{
    SweepServerOptions opts;
    opts.workers = 2;
    ServerFixture fx(opts);
    ASSERT_NE(fx.client, nullptr);

    ProcConfig cfg;
    cfg.num_cores = 2;
    cfg.core = configFor("small", SchedMode::ReDSOC);
    const std::vector<std::string> mix = {"crc", "act"};

    const auto remote = fx.client->runProcPoint(mix, cfg, kTestOps);
    ASSERT_TRUE(remote.has_value());
    SimDriver local(kTestOps);
    EXPECT_EQ(canonProc(*remote), canonProc(local.runProc(mix, cfg)));
}

TEST(SweepServer, BackpressureRejectsThenChunkedRetrySucceeds)
{
    // Capacity 2 with a single worker: a batch of 6 can never fit.
    SweepServerOptions opts;
    opts.queue_capacity = 2;
    opts.workers = 1;
    opts.retry_after_ms = 10;
    ServerFixture fx(opts);
    ASSERT_NE(fx.client, nullptr);

    std::vector<SweepClient::PointRequest> big;
    for (unsigned i = 0; i < 6; ++i) {
        SweepClient::PointRequest p;
        p.workload = "crc";
        CoreConfig cfg = configFor("small", SchedMode::ReDSOC);
        cfg.rob_entries = 32 + 2 * i; // distinct keys
        p.config_text = serializeCoreConfig(cfg);
        p.max_ops = kTestOps;
        big.push_back(std::move(p));
    }
    EXPECT_FALSE(fx.client->submit(big, 2).has_value());
    {
        const auto parsed = parseJson(fx.client->statsJson());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_GE(parsed->getU64("busy_rejections", 0), 1u);
        // Rejected batches leave no half-claimed keys behind.
        EXPECT_EQ(parsed->getU64("cache_entries", 99), 0u);
    }

    // The same work in capacity-sized chunks goes through (submit
    // retries transparently while the backlog drains).
    for (size_t base = 0; base < big.size(); base += 2) {
        const std::vector<SweepClient::PointRequest> chunk(
            big.begin() + static_cast<long>(base),
            big.begin() + static_cast<long>(base + 2));
        const auto results = fx.client->runBatch(chunk);
        ASSERT_TRUE(results.has_value());
        for (const auto &r : *results)
            EXPECT_TRUE(r.ok) << r.error;
    }
}

TEST(SweepServer, DiskCacheReadThroughAndSharedKeys)
{
    const std::string dir = makeTempDir();

    // Seed the disk cache with an in-process run: the daemon must
    // serve the same key without resimulating, byte-identically.
    CoreConfig cfg = configFor("small", SchedMode::ReDSOC);
    std::string key, want;
    {
        ScopedEnv env("REDSOC_CACHE_DIR", dir);
        SimDriver seed(kTestOps);
        const CoreStats &stats = seed.run("crc", cfg);
        key = seed.runKey("crc", cfg);
        want = serializeStats(key, stats);
    }

    SweepServerOptions opts;
    opts.workers = 1;
    opts.cache_dir = dir;
    ServerFixture fx(opts);
    ASSERT_NE(fx.client, nullptr);

    SweepClient::PointRequest p;
    p.workload = "crc";
    p.config_text = serializeCoreConfig(cfg);
    p.max_ops = kTestOps;
    const auto results = fx.client->runBatch({p});
    ASSERT_TRUE(results.has_value());
    ASSERT_EQ(results->size(), 1u);
    ASSERT_TRUE((*results)[0].ok) << (*results)[0].error;
    EXPECT_EQ((*results)[0].key, key);
    // sim_seconds included: byte equality here proves the payload is
    // the seeded disk entry, not a fresh simulation of the point.
    EXPECT_EQ((*results)[0].payload, want);
}

// ---------------------------------------------------------------------
// 7. Transparent offload (bench_all --server path)
// ---------------------------------------------------------------------

TEST(SweepServer, DriverOffloadsThroughEnvTransparently)
{
    SweepServerOptions opts;
    opts.workers = 2;
    ServerFixture fx(opts);
    ASSERT_NE(fx.client, nullptr);

    const CoreConfig cfg = configFor("small", SchedMode::ReDSOC);
    std::string via_server;
    {
        ScopedEnv env("REDSOC_SWEEP_SERVER",
                      fx.server->socketPath());
        resetServerOffloadForTest();
        SimDriver driver(kTestOps);
        via_server = canon(driver.run("crc", cfg));
    }
    resetServerOffloadForTest(); // re-latch: the env var is gone

    // The daemon really served it...
    const auto parsed = parseJson(fx.client->statsJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_GE(parsed->getU64("points_submitted", 0), 1u);
    // ...and the result is bit-identical to a local simulation.
    SimDriver local(kTestOps);
    EXPECT_EQ(via_server, canon(local.run("crc", cfg)));
}

// ---------------------------------------------------------------------
// 8. Run-cache failure-path hardening (multi-process)
// ---------------------------------------------------------------------

TEST(RunCacheHardening, MultiProcessStoreRaceLeavesNoTornFiles)
{
    const std::string dir = makeTempDir();
    constexpr unsigned kChildren = 6;

    std::vector<pid_t> pids;
    for (unsigned i = 0; i < kChildren; ++i)
        pids.push_back(spawnChild(
            "store-race",
            {{"REDSOC_TEST_DIR", dir},
             {"REDSOC_TEST_VARIANT", std::to_string(i % 2)}}));
    for (pid_t pid : pids)
        EXPECT_EQ(waitChild(pid), 0);

    // No staging litter survives any interleaving...
    EXPECT_EQ(countTmpFiles(dir), 0u);

    // ...and the contended key holds exactly one writer's payload,
    // never an interleaving of two.
    RunCache cache(dir);
    const auto got = cache.load("racekey");
    ASSERT_TRUE(got.has_value());
    const std::string a = canon(statsVariant(0));
    const std::string b = canon(statsVariant(1));
    const std::string loaded = canon(*got);
    EXPECT_TRUE(loaded == a || loaded == b);

    // Per-child keys are intact too.
    for (unsigned v = 0; v < 2; ++v) {
        const auto own = cache.load("own-" + std::to_string(v));
        ASSERT_TRUE(own.has_value());
        EXPECT_EQ(canon(*own), v == 0 ? a : b);
    }
}

TEST(RunCacheHardening, InterruptedSweepLeavesEveryEntryReadable)
{
    const std::string dir = makeTempDir();
    const std::string marker = dir + "/.sweep-started";

    const pid_t pid = spawnChild("sweep-interrupt",
                                 {{"REDSOC_CACHE_DIR", dir},
                                  {"REDSOC_TEST_MARKER", marker}});
    // Wait for the child to enter its sweep and commit at least one
    // point (sanitized builds are an order of magnitude slower, so no
    // fixed sleep), then interrupt it mid-flight.
    auto countEntries = [&dir] {
        unsigned n = 0;
        for (const auto &entry : fs::directory_iterator(dir))
            if (entry.path().extension() == ".stats")
                ++n;
        return n;
    };
    for (unsigned spins = 0; !fs::exists(marker) && spins < 5000;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(fs::exists(marker));
    for (unsigned spins = 0; countEntries() == 0 && spins < 60'000;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(countEntries(), 0u);
    ASSERT_EQ(::kill(pid, SIGINT), 0);
    const int rc = waitChild(pid);
    // 130 = interrupted mid-sweep; 0 = the sweep won the race. Both
    // are orderly exits; anything else is a crash.
    EXPECT_TRUE(rc == 130 || rc == 0) << "child exit " << rc;

    // The acceptance bar: zero .tmp-* files, zero unreadable entries.
    EXPECT_EQ(countTmpFiles(dir), 0u);
    unsigned entries = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".stats") == 0) {
            ++entries;
            EXPECT_TRUE(deserializeStats(readFile(entry.path()), "")
                            .has_value())
                << name;
        }
    }
    EXPECT_GT(entries, 0u);
}

TEST(RunCacheHardening, StaleTmpFilesAreSweptOnOpen)
{
    const std::string dir = makeTempDir();
    std::ofstream(dir + "/.tmp-1234-abc") << "orphaned staging data";
    std::ofstream(dir + "/.tmp-5678-def") << "more litter";
    std::ofstream(dir + "/keepme.stats") << "not a tmp file";
    ASSERT_EQ(countTmpFiles(dir), 2u);

    {
        // TTL 0: every stale file is already too old.
        ScopedEnv ttl("REDSOC_CACHE_TMP_TTL_S", "0");
        RunCache cache(dir);
    }
    EXPECT_EQ(countTmpFiles(dir), 0u);
    EXPECT_TRUE(fs::exists(dir + "/keepme.stats"));

    // With the default 1-hour TTL a fresh staging file survives (a
    // live writer's tmp must never be swept out from under it).
    std::ofstream(dir + "/.tmp-9999-live") << "in flight";
    {
        RunCache cache(dir);
    }
    EXPECT_EQ(countTmpFiles(dir), 1u);
}

TEST(RunCacheHardening, StoreSurvivesUnwritableStagingDir)
{
    // A bogus staging dir makes the tmp write fail; store must warn
    // and leave no litter, and the entry is simply absent.
    const std::string dir = makeTempDir();
    {
        ScopedEnv env("REDSOC_CACHE_TMP_DIR",
                      dir + "/does-not-exist");
        RunCache cache(dir);
        cache.store("key", statsVariant(0));
        EXPECT_FALSE(cache.load("key").has_value());
    }
    EXPECT_EQ(countTmpFiles(dir), 0u);

    // Same dir staging (the default) then works.
    RunCache cache(dir);
    cache.store("key", statsVariant(0));
    EXPECT_TRUE(cache.load("key").has_value());
}

// ---------------------------------------------------------------------
// Child modes (re-exec targets)
// ---------------------------------------------------------------------

namespace {

int
childStoreRace()
{
    const char *dir = std::getenv("REDSOC_TEST_DIR");
    const char *variant_s = std::getenv("REDSOC_TEST_VARIANT");
    if (dir == nullptr || variant_s == nullptr)
        return 3;
    const unsigned variant =
        static_cast<unsigned>(std::strtoul(variant_s, nullptr, 10));
    const CoreStats stats = statsVariant(variant);
    RunCache cache(dir);
    for (int i = 0; i < 25; ++i) {
        cache.store("racekey", stats);
        cache.store("own-" + std::to_string(variant), stats);
    }
    return 0;
}

int
childSweepInterrupt()
{
    const char *marker = std::getenv("REDSOC_TEST_MARKER");
    if (marker == nullptr || std::getenv("REDSOC_CACHE_DIR") == nullptr)
        return 3;
    installGracefulShutdown(1);

    SimDriver driver(kTestOps);
    std::vector<SimDriver::Point> points;
    for (const std::string core : {"small", "medium", "big"})
        for (const auto &[tag, cfg] : test::differentialConfigs(core))
            points.push_back({"crc", cfg});

    std::ofstream(marker) << "sweeping\n";
    try {
        driver.runAll(points);
    } catch (const ShutdownInterrupt &) {
        return 130;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (const char *mode = std::getenv("REDSOC_TEST_CHILD")) {
        ::unsetenv("REDSOC_TEST_CHILD");
        if (std::string(mode) == "store-race")
            return childStoreRace();
        if (std::string(mode) == "sweep-interrupt")
            return childSweepInterrupt();
        return 2;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

/**
 * @file
 * Pipeline-trace correctness suite:
 *
 *  1. lifecycle completeness (property test, 10 randomized-trace
 *     seeds): every dispatched op emits a well-formed event sequence
 *     — monotone timestamps, sub-cycle CIs in [0, ticksPerCycle),
 *     exactly one commit and no squash, recycle links referencing the
 *     real producer whose completion the consumer latched;
 *  2. the Chrome trace_event export parses as JSON (standalone
 *     structural validator — no JSON library dependency);
 *  3. golden-snapshot: the Konata export of a tiny fixed workload,
 *     under BOTH scheduler kernels, compared byte-exact against the
 *     committed tests/golden/trace_small.kanata (catches silent
 *     scheduler drift the aggregate checksum can't localize; rebuild
 *     with REDSOC_UPDATE_GOLDEN=1 after an intentional change);
 *  4. unit tests for the metrics sink and the exporter helpers.
 */

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "helpers.h"
#include "trace/exporters.h"
#include "trace/metrics.h"

#ifndef REDSOC_TEST_GOLDEN
#define REDSOC_TEST_GOLDEN "tests/golden"
#endif

namespace redsoc {
namespace {

using test::makeTrace;

// ---------------------------------------------------------------------
// Minimal structural JSON validator (RFC 8259 grammar, no semantics).
// ---------------------------------------------------------------------

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : s_(text) {}

    bool valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return pos_ == s_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (peek() != ':')
                return false;
            ++pos_;
            ws();
            if (!value())
                return false;
            ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            ws();
            if (!value())
                return false;
            ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') { ++pos_; return true; }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int k = 1; k <= 4; ++k)
                        if (pos_ + static_cast<size_t>(k) >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + static_cast<size_t>(k)])))
                            return false;
                    pos_ += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Randomized program (same shape as test_sched_equiv's web: dense ALU
// chains, late multi-cycle arrivals, aliasing memory, branches).
// ---------------------------------------------------------------------

Trace
randomTrace(u64 seed, unsigned n_ops)
{
    Rng rng(seed);
    ProgramBuilder b("trace_prop");

    for (unsigned r = 1; r <= 8; ++r)
        b.movImm(x(r), static_cast<s64>(rng.range(1, 255)));
    b.movImm(x(10), static_cast<s64>(rng.range(3, 17)));
    b.movImm(x(11), 0x1000);

    auto data_reg = [&] {
        return x(static_cast<unsigned>(1 + rng.below(8)));
    };
    const Opcode alu_ops[] = {Opcode::ADD, Opcode::SUB, Opcode::AND,
                              Opcode::ORR, Opcode::EOR};

    for (unsigned i = 0; i < n_ops; ++i) {
        const double roll = rng.uniform();
        if (roll < 0.55) {
            const Opcode op = alu_ops[rng.below(5)];
            if (rng.chance(0.5))
                b.alu(op, data_reg(), data_reg(), data_reg());
            else
                b.alui(op, data_reg(), data_reg(),
                       static_cast<s64>(rng.below(64)));
        } else if (roll < 0.70) {
            if (rng.chance(0.75))
                b.mul(data_reg(), data_reg(), data_reg());
            else
                b.sdiv(data_reg(), data_reg(), x(10));
        } else if (roll < 0.82) {
            const s64 off = static_cast<s64>(rng.below(64)) * 8;
            if (rng.chance(0.5))
                b.store(Opcode::STR, data_reg(), x(11), off);
            else
                b.load(Opcode::LDR, data_reg(), x(11), off);
        } else if (roll < 0.90) {
            b.fmovImm(x(9), 1.5 + rng.uniform());
            b.fop(rng.chance(0.5) ? Opcode::FADD : Opcode::FMUL, x(9),
                  x(9), x(9));
        } else {
            ProgramBuilder::Label skip = b.newLabel();
            b.branch(rng.chance(0.5) ? Opcode::BNEZ : Opcode::BGTZ,
                     data_reg(), skip);
            const unsigned block =
                static_cast<unsigned>(1 + rng.below(3));
            for (unsigned k = 0; k < block; ++k)
                b.alui(Opcode::ADD, data_reg(), data_reg(),
                       static_cast<s64>(rng.below(16)));
            b.bind(skip);
        }
    }
    b.halt();
    return makeTrace(b);
}

PipeTracer
runTraced(const Trace &trace, CoreConfig cfg, SchedKernel kernel)
{
    cfg.sched_kernel = kernel;
    PipeTracer tracer;
    OooCore core(std::move(cfg));
    core.setTracer(&tracer);
    (void)core.run(trace);
    return tracer;
}

/** Per-op digest of the event stream, in recording order. */
struct OpEvents
{
    std::vector<PipeEvent> seq;
    u64 count(PipeEventKind k) const
    {
        u64 n = 0;
        for (const PipeEvent &e : seq)
            n += e.kind == k ? 1 : 0;
        return n;
    }
    const PipeEvent *first(PipeEventKind k) const
    {
        for (const PipeEvent &e : seq)
            if (e.kind == k)
                return &e;
        return nullptr;
    }
};

// ---------------------------------------------------------------------
// 1. Lifecycle completeness over 10 randomized seeds
// ---------------------------------------------------------------------

class TraceLifecycle : public ::testing::TestWithParam<u64>
{
};

TEST_P(TraceLifecycle, EveryOpEmitsWellFormedSequence)
{
    const u64 seed = GetParam();
    const Trace trace = randomTrace(seed, 600);

    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;
    const PipeTracer tracer =
        runTraced(trace, cfg, SchedKernel::Event);
    ASSERT_EQ(tracer.dropped(), 0u) << "grow the test ring capacity";

    const Tick tpc = tracer.ticksPerCycle();
    std::map<SeqNum, OpEvents> ops;
    tracer.forEach([&](const PipeEvent &e) {
        ASSERT_LT(e.seq, trace.size());
        ops[e.seq].seq.push_back(e);
    });

    // Every dynamic op in the trace was dispatched and recorded.
    ASSERT_EQ(ops.size(), trace.size());

    for (const auto &[seq, op] : ops) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " seq=" + std::to_string(seq));
        // Exactly one frontend ladder and one writeback.
        EXPECT_EQ(op.count(PipeEventKind::Fetch), 1u);
        EXPECT_EQ(op.count(PipeEventKind::Decode), 1u);
        EXPECT_EQ(op.count(PipeEventKind::Rename), 1u);
        EXPECT_EQ(op.count(PipeEventKind::Dispatch), 1u);
        EXPECT_EQ(op.count(PipeEventKind::Writeback), 1u);
        // Commit xor squash: the replay-based model never squashes a
        // dispatched op, so "commit exactly once, squash never".
        EXPECT_EQ(op.count(PipeEventKind::Commit), 1u);
        EXPECT_EQ(op.count(PipeEventKind::Squash), 0u);
        // RS ops issue exactly once (wakeup/select/exec as a unit).
        const u64 selects = op.count(PipeEventKind::Select);
        EXPECT_LE(selects, 1u);
        EXPECT_EQ(op.count(PipeEventKind::Wakeup), selects);
        EXPECT_EQ(op.count(PipeEventKind::ExecBegin), selects);

        const PipeEvent *fetch = op.first(PipeEventKind::Fetch);
        const PipeEvent *wb = op.first(PipeEventKind::Writeback);
        const PipeEvent *commit = op.first(PipeEventKind::Commit);
        ASSERT_NE(fetch, nullptr);
        ASSERT_NE(wb, nullptr);
        ASSERT_NE(commit, nullptr);
        EXPECT_LE(fetch->tick, wb->tick);
        EXPECT_LE(wb->tick, commit->tick);
        EXPECT_LT(wb->arg, tpc); // CI in [0, ticksPerCycle)

        if (selects == 1) {
            const PipeEvent *wake = op.first(PipeEventKind::Wakeup);
            const PipeEvent *sel = op.first(PipeEventKind::Select);
            const PipeEvent *ex = op.first(PipeEventKind::ExecBegin);
            EXPECT_LT(fetch->tick, wake->tick);
            EXPECT_LE(wake->tick, sel->tick);
            EXPECT_LT(sel->tick, ex->tick);
            EXPECT_LE(ex->tick, wb->tick);
            EXPECT_LT(ex->arg, tpc);
        }

        // Recycle links name the real producer whose mid-cycle
        // completion this op latched: the link's writeback tick is
        // exactly this op's execution start.
        for (const PipeEvent &e : op.seq) {
            if (e.kind != PipeEventKind::RecycleLink)
                continue;
            ASSERT_NE(e.link, kNoSeq);
            ASSERT_LT(e.link, seq);
            EXPECT_EQ(op.count(PipeEventKind::TransparentPass), 1u);
            const auto pit = ops.find(e.link);
            ASSERT_NE(pit, ops.end());
            const PipeEvent *pwb =
                pit->second.first(PipeEventKind::Writeback);
            ASSERT_NE(pwb, nullptr);
            EXPECT_EQ(pwb->tick, e.tick)
                << "link " << e.link
                << " is not the producer whose completion was latched";
        }

        // An EGPW fire is always a speculative select.
        if (op.count(PipeEventKind::EgpwFire) != 0) {
            const PipeEvent *sel = op.first(PipeEventKind::Select);
            ASSERT_NE(sel, nullptr);
            EXPECT_EQ(sel->arg & 1u, 1u);
        }
    }
}

TEST_P(TraceLifecycle, ChromeExportParsesAsJson)
{
    const u64 seed = GetParam();
    const Trace trace = randomTrace(seed, 600);
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;
    const PipeTracer tracer =
        runTraced(trace, cfg, SchedKernel::Event);

    std::ostringstream os;
    exportChromeTrace(tracer, trace, os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonValidator(json).valid())
        << "seed=" << seed << ": invalid JSON (" << json.size()
        << " bytes)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceLifecycle,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 0xdeadbeefu,
                                           0xfeedfaceu));

// ---------------------------------------------------------------------
// 3. Golden Konata snapshot, both kernels
// ---------------------------------------------------------------------

/** The fixed golden workload: a narrow logic chain (maximal slack,
 *  long transparent chains) plus an ADD chain — guaranteed to produce
 *  EGPW fires and transparent passes on the ReDSOC big core. */
Trace
goldenTrace()
{
    ProgramBuilder b("trace_golden");
    test::emitLogicChain(b, 20);
    test::emitAddChain(b, 10, x(2));
    b.halt();
    return makeTrace(b);
}

TEST(TraceGolden, KonataSnapshotMatchesBothKernels)
{
    const Trace trace = goldenTrace();
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;

    std::string rendered[2];
    int i = 0;
    for (const SchedKernel kernel :
         {SchedKernel::Scan, SchedKernel::Event}) {
        const PipeTracer tracer = runTraced(trace, cfg, kernel);
        // The golden run must exercise the ReDSOC machinery.
        u64 fires = 0, passes = 0;
        tracer.forEach([&](const PipeEvent &e) {
            fires += e.kind == PipeEventKind::EgpwFire ? 1 : 0;
            passes += e.kind == PipeEventKind::TransparentPass ? 1 : 0;
        });
        EXPECT_GT(fires, 0u);
        EXPECT_GT(passes, 0u);
        std::ostringstream os;
        exportKonata(tracer, trace, os);
        rendered[i++] = os.str();
    }
    EXPECT_EQ(rendered[0], rendered[1])
        << "Scan and Event kernels rendered different traces";

    const std::string golden_path =
        std::string(REDSOC_TEST_GOLDEN) + "/trace_small.kanata";
    const char *update = std::getenv("REDSOC_UPDATE_GOLDEN");
    if (update != nullptr && *update != '\0') {
        std::ofstream ofs(golden_path, std::ios::binary);
        ASSERT_TRUE(ofs) << "cannot write " << golden_path;
        ofs << rendered[0];
        GTEST_SKIP() << "golden updated: " << golden_path;
    }
    std::ifstream ifs(golden_path, std::ios::binary);
    ASSERT_TRUE(ifs) << "missing golden file " << golden_path
                     << " (regenerate with REDSOC_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << ifs.rdbuf();
    EXPECT_EQ(rendered[0], want.str())
        << "scheduler drift: the committed golden Konata trace no "
           "longer matches (REDSOC_UPDATE_GOLDEN=1 if intentional)";
}

// ---------------------------------------------------------------------
// 4. Metrics sink and exporter helper units
// ---------------------------------------------------------------------

TEST(TraceMetricsTest, AggregatesHandcraftedEvents)
{
    ProgramBuilder b("trace_metrics");
    b.movImm(x(1), 1);               // seq 0
    b.alui(Opcode::ADD, x(1), x(1), 1); // seq 1
    b.halt();                        // seq 2
    const Trace trace = makeTrace(b);

    PipeTracer t(64);
    t.beginRun(8);
    t.record(PipeEventKind::Wakeup, 1, 8);
    t.record(PipeEventKind::Select, 1, 16);       // 1 cycle of wait
    t.record(PipeEventKind::Writeback, 0, 21, 5); // slack (8-5)%8 = 3
    t.record(PipeEventKind::RecycleLink, 1, 21, 0, 0);
    t.record(PipeEventKind::TransparentPass, 1, 21, 5);
    t.record(PipeEventKind::EgpwArm, 1, 16);
    t.record(PipeEventKind::EgpwFire, 1, 16);
    t.record(PipeEventKind::EgpwWaste, 1, 16, 1);
    t.record(PipeEventKind::Replay, 1, 16, 1);
    t.record(PipeEventKind::Replay, 1, 16, 2);
    t.record(PipeEventKind::Commit, 0, 24);
    t.record(PipeEventKind::Commit, 1, 24);

    const TraceMetrics m = computeTraceMetrics(t, trace);
    EXPECT_EQ(m.events, 12u);
    EXPECT_EQ(m.dropped, 0u);
    EXPECT_EQ(m.ticks_per_cycle, 8u);

    const auto alu = static_cast<size_t>(FuClass::IntAlu);
    EXPECT_EQ(m.slack_by_class[alu].count(), 1u);
    EXPECT_EQ(m.slack_by_class[alu].total(), 3u);
    EXPECT_EQ(m.wakeup_to_issue.count(), 1u);
    EXPECT_EQ(m.wakeup_to_issue.total(), 1u);
    EXPECT_EQ(m.recycle_links, 1u);
    EXPECT_EQ(m.chain_depth.count(), 1u);
    EXPECT_EQ(m.chain_depth.total(), 2u); // link depth: root + 1
    EXPECT_EQ(m.transparent_passes, 1u);
    EXPECT_EQ(m.egpw_arms, 1u);
    EXPECT_EQ(m.egpw_fires, 1u);
    EXPECT_EQ(m.egpw_wastes_span, 1u);
    EXPECT_EQ(m.egpw_wastes_no_slack, 0u);
    EXPECT_EQ(m.replays_last_arrival, 1u);
    EXPECT_EQ(m.replays_width, 1u);
    EXPECT_EQ(m.commits, 2u);
    EXPECT_EQ(m.squashes, 0u);

    const std::string report = renderTraceMetrics(m);
    EXPECT_NE(report.find("EGPW"), std::string::npos);
    EXPECT_NE(report.find("IntAlu"), std::string::npos);
}

TEST(TraceMetricsTest, ChainDepthFollowsLinks)
{
    ProgramBuilder b("trace_metrics");
    test::emitLogicChain(b, 4);
    b.halt();
    const Trace trace = makeTrace(b);

    PipeTracer t(16);
    t.beginRun(8);
    // 1 <- 2 <- 3: a three-op recycle chain (depths 2 and 3).
    t.record(PipeEventKind::RecycleLink, 2, 10, 0, 1);
    t.record(PipeEventKind::RecycleLink, 3, 13, 0, 2);
    const TraceMetrics m = computeTraceMetrics(t, trace);
    EXPECT_EQ(m.chain_depth.count(), 2u);
    EXPECT_EQ(m.chain_depth.bucket(2), 1u);
    EXPECT_EQ(m.chain_depth.bucket(3), 1u);
}

TEST(TraceExportHelpers, FormatParsingAndExtensions)
{
    EXPECT_EQ(parseTraceFormat("chrome"), TraceFormat::Chrome);
    EXPECT_EQ(parseTraceFormat("json"), TraceFormat::Chrome);
    EXPECT_EQ(parseTraceFormat("konata"), TraceFormat::Konata);
    EXPECT_EQ(parseTraceFormat("kanata"), TraceFormat::Konata);
    EXPECT_FALSE(parseTraceFormat("vcd").has_value());

    EXPECT_STREQ(traceFormatExtension(TraceFormat::Chrome),
                 ".trace.json");
    EXPECT_STREQ(traceFormatExtension(TraceFormat::Konata), ".kanata");

    EXPECT_EQ(traceFormatForPath("out/run.json"), TraceFormat::Chrome);
    EXPECT_EQ(traceFormatForPath("run.trace.json"),
              TraceFormat::Chrome);
    EXPECT_EQ(traceFormatForPath("run.kanata"), TraceFormat::Konata);
    EXPECT_EQ(traceFormatForPath("noext"), TraceFormat::Konata);
}

TEST(TraceExportHelpers, SanitizeRunKeys)
{
    EXPECT_EQ(sanitizeTraceFileName("crc@big|redsoc#ops=100"),
              "crc_big_redsoc_ops_100");
    EXPECT_EQ(sanitizeTraceFileName("safe-name_1.2"), "safe-name_1.2");
}

TEST(TraceExportHelpers, EventNamesAreStableAndUnique)
{
    std::set<std::string> names;
    for (unsigned k = 0; k < static_cast<unsigned>(PipeEventKind::NUM);
         ++k) {
        const std::string name =
            pipeEventName(static_cast<PipeEventKind>(k));
        EXPECT_NE(name, "unknown");
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate event name " << name;
    }
    EXPECT_EQ(names.count("egpw_fire"), 1u);
    EXPECT_EQ(names.count("transparent_pass"), 1u);
}

TEST(TraceExportHelpers, KonataHeaderAndRetirement)
{
    const Trace trace = goldenTrace();
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;
    const PipeTracer tracer =
        runTraced(trace, cfg, SchedKernel::Event);

    std::ostringstream os;
    exportKonata(tracer, trace, os);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("Kanata\t0004\n", 0), 0u);
    // Every op is introduced and retired exactly once.
    u64 intros = 0, retires = 0;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
        intros += line.rfind("I\t", 0) == 0 ? 1 : 0;
        retires += line.rfind("R\t", 0) == 0 ? 1 : 0;
    }
    EXPECT_EQ(intros, trace.size());
    EXPECT_EQ(retires, trace.size());
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Tests for redsoc_lint (tools/lint): every rule must fire exactly
 * where its fixture says, stay quiet on the clean fixture, honour
 * allow() suppressions, and the real tree must lint clean against
 * the committed baseline.
 */

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"
#include "symtab.h"

namespace redsoc::lint {
namespace {

#ifndef REDSOC_LINT_FIXTURES
#error "REDSOC_LINT_FIXTURES must point at tests/lint_fixtures"
#endif
#ifndef REDSOC_SOURCE_ROOT
#error "REDSOC_SOURCE_ROOT must point at the repository root"
#endif

const std::string kFixtures = REDSOC_LINT_FIXTURES;
const std::string kRoot = REDSOC_SOURCE_ROOT;

SourceFile
fixture(const std::string &name)
{
    return lexFile(kFixtures + "/" + name, name);
}

/** (line, rule) pairs for one fixture under the default options. */
std::vector<std::pair<int, std::string>>
sites(const std::string &name)
{
    const std::vector<Finding> fs = lintFile(fixture(name), Options{});
    std::vector<std::pair<int, std::string>> out;
    out.reserve(fs.size());
    for (const Finding &f : fs)
        out.emplace_back(f.line, f.rule);
    std::sort(out.begin(), out.end());
    return out;
}

using Sites = std::vector<std::pair<int, std::string>>;

TEST(LintRules, InitFieldFiresPerUninitializedConfigStatsField)
{
    EXPECT_EQ(sites("init_field.h"),
              (Sites{{20, "init-field"},
                     {21, "init-field"},
                     {28, "init-field"}}));
}

TEST(LintRules, NondetApiFiresOnBannedCalls)
{
    EXPECT_EQ(sites("nondet_api.cc"),
              (Sites{{11, "nondet-api"},
                     {12, "nondet-api"},
                     {13, "nondet-api"},
                     {14, "nondet-api"}}));
}

TEST(LintRules, NondetIterFiresOnUnorderedRangeFor)
{
    EXPECT_EQ(sites("nondet_iter.cc"),
              (Sites{{14, "nondet-iter"}, {17, "nondet-iter"}}));
}

TEST(LintRules, PtrKeyOrderFiresOnPointerKeyedContainers)
{
    EXPECT_EQ(sites("ptr_key_order.cc"),
              (Sites{{13, "ptr-key-order"}, {14, "ptr-key-order"}}));
}

TEST(LintRules, CycleNarrowFiresOnCastAndImplicitNarrowing)
{
    EXPECT_EQ(sites("cycle_narrow.cc"),
              (Sites{{11, "cycle-narrow"}, {12, "cycle-narrow"}}));
}

TEST(LintRules, FloatAccumFiresOnlyInPerCycleLoops)
{
    EXPECT_EQ(sites("float_accum.cc"), (Sites{{13, "float-accum"}}));
}

TEST(LintRules, FloatAccumExemptsConfiguredPaths)
{
    SourceFile sf = fixture("float_accum.cc");
    sf.path = "src/power/float_accum.cc"; // pretend-location
    std::vector<Finding> out;
    ruleFloatAccum(sf, {"src/power"}, out);
    EXPECT_TRUE(out.empty());
}

TEST(LintRules, HotAllocFiresInsidePerCycleFunctionsOnly)
{
    // The fixture lives outside src/core/, so the default path gate
    // must keep it quiet...
    EXPECT_EQ(sites("hot_alloc.cc"), Sites{});

    // ...and under a pretend scheduler path the rule flags 'new',
    // unreserved push_back and std::function, skips the reserved
    // vector and the non-hot function, and honours allow().
    SourceFile sf = fixture("hot_alloc.cc");
    sf.path = "src/core/hot_alloc.cc";
    std::vector<Finding> out;
    const Options opt;
    ruleHotAlloc(sf, opt.hot_alloc_paths, opt.hot_functions, out);
    Sites got;
    for (const Finding &f : out)
        got.emplace_back(f.line, f.rule);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (Sites{{18, "hot-alloc"},
                          {19, "hot-alloc"},
                          {21, "hot-alloc"}}));
}

TEST(LintRules, CleanFixtureStaysQuiet)
{
    EXPECT_EQ(sites("clean.cc"), Sites{});
}

TEST(LintSuppression, AllowCommentsSilenceOnlyTheNamedRule)
{
    // Every violation in suppressed.cc is allow()ed except the
    // std::rand() whose comment names the wrong rule.
    EXPECT_EQ(sites("suppressed.cc"), (Sites{{25, "nondet-api"}}));
}

TEST(LintSuppression, SameLineAndPrecedingLineFormsWork)
{
    const SourceFile sf =
        lex("t.cc", "int a; // redsoc-lint: allow(x)\n"
                    "// redsoc-lint: allow(y, z)\n"
                    "int b;\n");
    EXPECT_TRUE(sf.allowed(1, "x"));
    EXPECT_FALSE(sf.allowed(1, "y"));
    EXPECT_TRUE(sf.allowed(3, "y"));
    EXPECT_TRUE(sf.allowed(3, "z"));
    EXPECT_FALSE(sf.allowed(3, "x"));

    const SourceFile all =
        lex("t.cc", "int c; // redsoc-lint: allow(all)\n");
    EXPECT_TRUE(all.allowed(1, "anything"));
}

TEST(LintStatComplete, FiresForEveryUncoveredField)
{
    const SourceFile header = fixture("stat_complete_stats.h");
    const SourceFile ser = fixture("stat_complete_serializer.cc");
    const SourceFile cmp = fixture("stat_complete_comparator.cc");

    std::vector<Finding> out;
    ruleStatComplete(header, "FixStats", ser, cmp, out);

    Sites got;
    for (const Finding &f : out)
        got.emplace_back(f.line, f.rule);
    std::sort(got.begin(), got.end());
    // dropped (11): never serialized; skipped (12): never compared;
    // half_cached (13): in serialize but not deserialize.
    // wall_seconds: exempted via allow(stat-complete).
    EXPECT_EQ(got, (Sites{{11, "stat-complete"},
                          {12, "stat-complete"},
                          {13, "stat-complete"}}));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_NE(out[0].message.find("serializer"), std::string::npos);
    EXPECT_NE(out[1].message.find("comparator"), std::string::npos);
    EXPECT_NE(out[2].message.find("serializer"), std::string::npos);
}

TEST(LintTraceComplete, FiresForEveryUnexportedKind)
{
    const SourceFile header = fixture("trace_complete_enum.h");
    const SourceFile exp = fixture("trace_complete_exporter.cc");

    std::vector<Finding> out;
    ruleTraceComplete(header, "FixEventKind", exp, out);

    Sites got;
    for (const Finding &f : out)
        got.emplace_back(f.line, f.rule);
    std::sort(got.begin(), got.end());
    // Retire (10): only one exporter switch; Squash (11): neither.
    // Probe: exempted via allow(trace-complete); NUM: sentinel.
    EXPECT_EQ(got, (Sites{{10, "trace-complete"},
                          {11, "trace-complete"}}));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[0].message.find("Retire"), std::string::npos);
    EXPECT_NE(out[0].message.find("trace_complete_exporter.cc"),
              std::string::npos);
    EXPECT_NE(out[1].message.find("Squash"), std::string::npos);
}

TEST(LintEnumParser, ExtractsEnumeratorsAndSkipsInitializers)
{
    const auto enums = parseEnums(fixture("trace_complete_enum.h"));
    ASSERT_EQ(enums.size(), 1u);
    EXPECT_EQ(enums[0].name, "FixEventKind");
    std::vector<std::string> names;
    for (const auto &e : enums[0].enumerators)
        names.push_back(e.name);
    EXPECT_EQ(names, (std::vector<std::string>{
                         "Fetch", "Issue", "Retire", "Squash", "Probe",
                         "NUM"}));
}

TEST(LintStructParser, ExtractsFieldsAndSkipsNonFields)
{
    const SourceFile sf = fixture("init_field.h");
    const auto structs = parseStructs(sf);
    std::set<std::string> names;
    for (const auto &s : structs)
        names.insert(s.name);
    EXPECT_TRUE(names.count("GoodConfig"));
    EXPECT_TRUE(names.count("BadStats"));

    for (const auto &s : structs) {
        if (s.name != "BadStats")
            continue;
        ASSERT_EQ(s.fields.size(), 2u); // ipc() and kLimit excluded
        EXPECT_EQ(s.fields[0].name, "committed");
        EXPECT_TRUE(s.fields[0].initialized);
        EXPECT_EQ(s.fields[1].name, "cycles");
        EXPECT_FALSE(s.fields[1].initialized);
    }
}

TEST(LintBaseline, GrandfathersExactKeysOnly)
{
    const Finding a{"src/a.cc", 10, "nondet-api", "call to 'rand'"};
    const Finding b{"src/b.cc", 20, "nondet-api", "call to 'rand'"};
    const std::set<std::string> base = {a.key()};
    const auto fresh = newFindings({a, b}, base);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].path, "src/b.cc");
    // Keys are line-free: moving a finding must not invalidate it.
    const Finding moved{"src/a.cc", 99, "nondet-api", "call to 'rand'"};
    EXPECT_TRUE(newFindings({moved}, base).empty());
}

/** The acceptance gate: the real tree lints clean against the
 *  committed baseline (which is expected to stay empty). */
TEST(LintTree, RepositoryIsCleanAgainstBaseline)
{
    Options opt;
    opt.root = kRoot;
    const std::vector<Finding> all = lintTree(opt);
    const std::set<std::string> base =
        loadBaseline(kRoot + "/tools/lint/baseline.txt");
    std::string pretty;
    for (const Finding &f : newFindings(all, base))
        pretty += f.pretty() + "\n";
    EXPECT_EQ(pretty, "");
}

/** R4 is live on the real tree: drop a field from the serializer
 *  text and the rule must notice. */
TEST(LintTree, StatCompleteGuardsTheRealCoreStats)
{
    Options opt;
    opt.root = kRoot;
    SourceFile header = lexFile(kRoot + "/" + opt.stats_header,
                                opt.stats_header);
    SourceFile ser =
        lexFile(kRoot + "/" + opt.serializer, opt.serializer);
    SourceFile cmp =
        lexFile(kRoot + "/" + opt.comparator, opt.comparator);

    std::vector<Finding> ok;
    ruleStatComplete(header, opt.stats_struct, ser, cmp, ok);
    EXPECT_TRUE(ok.empty());

    // Simulate "added a stat, forgot the cache format": erase every
    // mention of recycled_ops from the serializer tokens.
    SourceFile broken = ser;
    broken.toks.erase(
        std::remove_if(broken.toks.begin(), broken.toks.end(),
                       [](const Token &t) {
                           return t.text == "recycled_ops";
                       }),
        broken.toks.end());
    std::vector<Finding> out;
    ruleStatComplete(header, opt.stats_struct, broken, cmp, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "stat-complete");
    EXPECT_NE(out[0].message.find("recycled_ops"), std::string::npos);
}

/** R4 is live on every multi-core stats block: dropping a field
 *  mention from the ProcStats codec or the equivalence comparator
 *  must surface for each wired struct. */
TEST(LintTree, StatCompleteGuardsTheMultiCoreBlocks)
{
    Options opt;
    opt.root = kRoot;
    ASSERT_EQ(opt.extra_stat_blocks.size(), 3u);

    // Unique probe field per block: erasing its serializer mentions
    // must produce exactly one finding naming it.
    const std::map<std::string, std::string> probes = {
        {"LlcCoreStats", "mshr_merges"},
        {"LlcStats", "writebacks"},
        {"ProcStats", "cores"},
    };
    for (const Options::StatBlock &blk : opt.extra_stat_blocks) {
        SourceFile header =
            lexFile(kRoot + "/" + blk.header, blk.header);
        SourceFile ser =
            lexFile(kRoot + "/" + blk.serializer, blk.serializer);
        SourceFile cmp =
            lexFile(kRoot + "/" + blk.comparator, blk.comparator);

        std::vector<Finding> ok;
        ruleStatComplete(header, blk.struct_name, ser, cmp, ok);
        EXPECT_TRUE(ok.empty()) << blk.struct_name;

        const std::string probe = probes.at(blk.struct_name);
        SourceFile broken = ser;
        broken.toks.erase(
            std::remove_if(broken.toks.begin(), broken.toks.end(),
                           [&probe](const Token &t) {
                               return t.text == probe;
                           }),
            broken.toks.end());
        std::vector<Finding> out;
        ruleStatComplete(header, blk.struct_name, broken, cmp, out);
        ASSERT_EQ(out.size(), 1u) << blk.struct_name;
        EXPECT_EQ(out[0].rule, "stat-complete");
        EXPECT_NE(out[0].message.find(probe), std::string::npos)
            << blk.struct_name;

        // The comparator leg is live too.
        SourceFile no_cmp = cmp;
        no_cmp.toks.erase(
            std::remove_if(no_cmp.toks.begin(), no_cmp.toks.end(),
                           [&probe](const Token &t) {
                               return t.text == probe;
                           }),
            no_cmp.toks.end());
        std::vector<Finding> cmp_out;
        ruleStatComplete(header, blk.struct_name, ser, no_cmp,
                         cmp_out);
        ASSERT_EQ(cmp_out.size(), 1u) << blk.struct_name;
        EXPECT_NE(cmp_out[0].message.find("comparator"),
                  std::string::npos)
            << blk.struct_name;
    }
}

/** R5 is live on the real tree: drop an event kind from the exporter
 *  text and the rule must notice. */
TEST(LintTree, TraceCompleteGuardsTheRealSchema)
{
    Options opt;
    opt.root = kRoot;
    SourceFile header = lexFile(kRoot + "/" + opt.trace_header,
                                opt.trace_header);
    SourceFile exp =
        lexFile(kRoot + "/" + opt.trace_exporter, opt.trace_exporter);

    std::vector<Finding> ok;
    ruleTraceComplete(header, opt.trace_enum, exp, ok);
    EXPECT_TRUE(ok.empty());

    // Simulate "added an event kind, forgot an exporter": erase every
    // mention of TransparentPass from the exporter tokens.
    SourceFile broken = exp;
    broken.toks.erase(
        std::remove_if(broken.toks.begin(), broken.toks.end(),
                       [](const Token &t) {
                           return t.text == "TransparentPass";
                       }),
        broken.toks.end());
    std::vector<Finding> out;
    ruleTraceComplete(header, opt.trace_enum, broken, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "trace-complete");
    EXPECT_NE(out[0].message.find("TransparentPass"),
              std::string::npos);
}

TEST(LintAuditComplete, FiresForEveryUntestedInvariant)
{
    const SourceFile header = fixture("audit_complete_enum.h");
    const SourceFile tst = fixture("audit_complete_tests.cc");

    std::vector<Finding> out;
    ruleAuditComplete(header, "FixInvariant", tst, out);

    Sites got;
    for (const Finding &f : out)
        got.emplace_back(f.line, f.rule);
    std::sort(got.begin(), got.end());
    // Leftover (10): no test mentions it. AgeOrder/CiBound: tested;
    // Sweep: exempted via allow(audit-complete); NUM: sentinel.
    EXPECT_EQ(got, (Sites{{10, "audit-complete"}}));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].message.find("Leftover"), std::string::npos);
    EXPECT_NE(out[0].message.find("audit_complete_tests.cc"),
              std::string::npos);
}

/** R6 is live on the real tree: drop an invariant's mentions from
 *  the regression-suite text and the rule must notice. */
TEST(LintTree, AuditCompleteGuardsTheRealCatalogue)
{
    Options opt;
    opt.root = kRoot;
    SourceFile header = lexFile(kRoot + "/" + opt.audit_header,
                                opt.audit_header);
    SourceFile tst =
        lexFile(kRoot + "/" + opt.audit_tests, opt.audit_tests);

    std::vector<Finding> ok;
    ruleAuditComplete(header, opt.audit_enum, tst, ok);
    EXPECT_TRUE(ok.empty());

    // Simulate "added an invariant, forgot its test": erase every
    // mention of EgpwLeftoverSlot from the suite's tokens.
    SourceFile broken = tst;
    broken.toks.erase(
        std::remove_if(broken.toks.begin(), broken.toks.end(),
                       [](const Token &t) {
                           return t.text == "EgpwLeftoverSlot";
                       }),
        broken.toks.end());
    std::vector<Finding> out;
    ruleAuditComplete(header, opt.audit_enum, broken, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "audit-complete");
    EXPECT_NE(out[0].message.find("EgpwLeftoverSlot"),
              std::string::npos);
}

TEST(LintCritpathComplete, FiresForEveryUnconsumedKind)
{
    const SourceFile header = fixture("critpath_complete_enum.h");
    const SourceFile bld = fixture("critpath_complete_builder.cc");

    std::vector<Finding> out;
    ruleCritpathComplete(header, "FixPipeKind", bld, out);

    Sites got;
    for (const Finding &f : out)
        got.emplace_back(f.line, f.rule);
    std::sort(got.begin(), got.end());
    // Squash (11): the builder never mentions it. Dispatch/Select:
    // consumed; Writeback: explicitly ignored (a mention counts);
    // Heat: exempted via allow(critpath-complete); NUM: sentinel.
    EXPECT_EQ(got, (Sites{{11, "critpath-complete"}}));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NE(out[0].message.find("Squash"), std::string::npos);
    EXPECT_NE(out[0].message.find("critpath_complete_builder.cc"),
              std::string::npos);
}

/** R9 is live on the real tree: drop an event kind's mentions from
 *  the dependence-graph builder text and the rule must notice. */
TEST(LintTree, CritpathCompleteGuardsTheRealBuilder)
{
    Options opt;
    opt.root = kRoot;
    SourceFile header = lexFile(kRoot + "/" + opt.critpath_header,
                                opt.critpath_header);
    SourceFile bld = lexFile(kRoot + "/" + opt.critpath_builder,
                             opt.critpath_builder);

    std::vector<Finding> ok;
    ruleCritpathComplete(header, opt.critpath_enum, bld, ok);
    EXPECT_TRUE(ok.empty());

    // Simulate "added an event kind, forgot the dependence graph":
    // erase every mention of RecycleLink from the builder's tokens.
    SourceFile broken = bld;
    broken.toks.erase(
        std::remove_if(broken.toks.begin(), broken.toks.end(),
                       [](const Token &t) {
                           return t.text == "RecycleLink";
                       }),
        broken.toks.end());
    std::vector<Finding> out;
    ruleCritpathComplete(header, opt.critpath_enum, broken, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "critpath-complete");
    EXPECT_NE(out[0].message.find("RecycleLink"), std::string::npos);
}

TEST(LintScopeTree, ClassifiesScopesAndParsesContracts)
{
    const SourceFile sf = lex(
        "t.cc",
        "namespace ns {\n"
        "struct S {\n"
        "    void m() REDSOC_REQUIRES(mu_) { if (x) { } }\n"
        "    std::mutex mu_;\n"
        "};\n"
        "void free_fn() {\n"
        "    auto f = [&] { return 1; };\n"
        "}\n"
        "S make() { return S{}; }\n"
        "} // namespace ns\n");
    const ScopeTree tree = buildScopeTree(sf);

    std::vector<std::pair<ScopeKind, std::string>> got;
    for (const Scope &sc : tree.scopes)
        got.emplace_back(sc.kind, sc.name);
    const std::vector<std::pair<ScopeKind, std::string>> want = {
        {ScopeKind::File, ""},      {ScopeKind::Namespace, "ns"},
        {ScopeKind::Class, "S"},    {ScopeKind::Function, "m"},
        {ScopeKind::Block, ""},     {ScopeKind::Function, "free_fn"},
        {ScopeKind::Lambda, ""},    {ScopeKind::Function, "make"},
        {ScopeKind::Block, ""}};
    EXPECT_EQ(got, want);

    for (const Scope &sc : tree.scopes) {
        if (sc.kind != ScopeKind::Function || sc.name != "m")
            continue;
        EXPECT_EQ(sc.class_name, "S");
        EXPECT_EQ(sc.requires_, std::vector<std::string>{"mu_"});
    }
}

TEST(LintSymtab, ParsesFieldsAnnotationsAndContracts)
{
    const SourceFile sf = lex(
        "t.h",
        "struct Box {\n"
        "  public:\n"
        "    void fill() REDSOC_REQUIRES(mu_);\n"
        "    void drain() REDSOC_EXCLUDES(mu_);\n"
        "    Box &operator=(const Box &) = delete;\n"
        "  private:\n"
        "    std::mutex mu_;\n"
        "    std::condition_variable cv_;\n"
        "    int depth_ REDSOC_GUARDED_BY(mu_) = 0;\n"
        "    int version_ REDSOC_NOT_GUARDED = 0;\n"
        "    static int total_;\n"
        "};\n");
    const SymbolTable tab = buildSymbolTable(sf, buildScopeTree(sf));
    const ClassSym *box = tab.find("Box");
    ASSERT_NE(box, nullptr);
    EXPECT_TRUE(box->ownsMutex());
    ASSERT_EQ(box->fields.size(), 4u); // static + operator= excluded
    ASSERT_NE(box->field("mu_"), nullptr);
    EXPECT_TRUE(box->field("mu_")->is_mutex);
    ASSERT_NE(box->field("cv_"), nullptr);
    EXPECT_TRUE(box->field("cv_")->is_cv);
    ASSERT_NE(box->field("depth_"), nullptr);
    EXPECT_EQ(box->field("depth_")->guarded_by, "mu_");
    ASSERT_NE(box->field("version_"), nullptr);
    EXPECT_TRUE(box->field("version_")->not_guarded);
    const MethodSym *fill = box->method("fill");
    ASSERT_NE(fill, nullptr);
    EXPECT_EQ(fill->requires_, std::vector<std::string>{"mu_"});
    const MethodSym *drain = box->method("drain");
    ASSERT_NE(drain, nullptr);
    EXPECT_EQ(drain->excludes_, std::vector<std::string>{"mu_"});
}

TEST(LintRules, GuardedByFiresOnUnheldAccessAndContracts)
{
    // 17: plain unlocked access; 25: inside a manual unlock window;
    // 37: calling a REQUIRES method unlocked; 40: calling an
    // EXCLUDES method locked. 51 is suppressed via allow().
    EXPECT_EQ(sites("guarded_by.cc"),
              (Sites{{17, "guarded-by"},
                     {25, "guarded-by"},
                     {37, "guarded-by"},
                     {40, "guarded-by"}}));
}

TEST(LintRules, GuardedByCoverageDemandsDisciplineUnderSrc)
{
    SourceFile sf = fixture("guarded_by.cc");
    sf.path = "src/sim/guarded_by.cc"; // pretend-location
    const Options opt;
    auto run = [&](const SourceFile &f) {
        const ScopeTree tree = buildScopeTree(f);
        const SymbolTable tab = buildSymbolTable(f, tree);
        std::vector<Finding> out;
        ruleGuardedBy(f, tree, tab, tab, opt.guarded_coverage_paths,
                      out, nullptr);
        return out;
    };
    // Fully annotated: the coverage arm adds nothing beyond the four
    // enforcement findings.
    EXPECT_EQ(run(sf).size(), 4u);

    // Delete the REDSOC_NOT_GUARDED annotation: its field must now
    // be reported as declaring no discipline.
    SourceFile broken = sf;
    std::erase_if(broken.toks, [](const Token &t) {
        return t.text == "REDSOC_NOT_GUARDED";
    });
    const std::vector<Finding> out = run(broken);
    ASSERT_EQ(out.size(), 5u);
    bool hit = false;
    for (const Finding &f : out)
        hit = hit || (f.line == 56 && f.rule == "guarded-by" &&
                      f.message.find("lossy_") != std::string::npos);
    EXPECT_TRUE(hit);
}

/** R10 is live on the real tree: delete one GUARDED_BY annotation
 *  from the thread pool header and the coverage arm must notice. */
TEST(LintTree, GuardedByGuardsTheRealThreadPool)
{
    const std::string rel = "src/sim/thread_pool.h";
    const SourceFile sf = lexFile(kRoot + "/" + rel, rel);
    const Options opt;
    auto run = [&](const SourceFile &f) {
        const ScopeTree tree = buildScopeTree(f);
        const SymbolTable tab = buildSymbolTable(f, tree);
        std::vector<Finding> out;
        ruleGuardedBy(f, tree, tab, tab, opt.guarded_coverage_paths,
                      out, nullptr);
        return out;
    };
    EXPECT_TRUE(run(sf).empty());

    // Erase the first REDSOC_GUARDED_BY(mu_) group (queue_'s).
    SourceFile broken = sf;
    for (size_t i = 0; i + 3 < broken.toks.size(); ++i) {
        if (broken.toks[i].text == "REDSOC_GUARDED_BY") {
            broken.toks.erase(broken.toks.begin() +
                                  static_cast<long>(i),
                              broken.toks.begin() +
                                  static_cast<long>(i) + 4);
            break;
        }
    }
    const std::vector<Finding> out = run(broken);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "guarded-by");
    EXPECT_NE(out[0].message.find("ThreadPool::queue_"),
              std::string::npos);
}

TEST(LintRules, LockOrderFiresOnCycleAndSelfDeadlock)
{
    // 11: anchor of the first_/second_ inversion cycle; 23: the
    // double-acquire self-edge.
    EXPECT_EQ(sites("lock_order_cycle.cc"),
              (Sites{{11, "lock-order"}, {23, "lock-order"}}));
}

/** R11 is live: the consistently-ordered fixture is clean, and
 *  inverting debit()'s nested pair makes the cycle check fire. */
TEST(LintRules, LockOrderNoticesAnInvertedPair)
{
    EXPECT_EQ(sites("lock_order.cc"), Sites{});

    SourceFile sf = fixture("lock_order.cc");
    for (Token &t : sf.toks) {
        if (t.line < 20 || t.line > 24)
            continue;
        if (t.text == "alpha_")
            t.text = "beta_";
        else if (t.text == "beta_")
            t.text = "alpha_";
    }
    const std::vector<Finding> out = lintFile(sf, Options{});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "lock-order");
    EXPECT_NE(out[0].message.find("cycle"), std::string::npos);
    EXPECT_NE(out[0].message.find("Ledger::alpha_"),
              std::string::npos);
    EXPECT_NE(out[0].message.find("Ledger::beta_"),
              std::string::npos);
}

TEST(LintRules, NondetTaintTracksSourcesThroughLocals)
{
    // 22: now() through two locals; 27: wall-clock stat readback;
    // 36: unordered iteration order; 44: pointer-to-integer cast.
    // 28 is suppressed via allow(); 24 is killed by an overwrite.
    EXPECT_EQ(sites("nondet_taint.cc"),
              (Sites{{22, "nondet-taint"},
                     {27, "nondet-taint"},
                     {36, "nondet-taint"},
                     {44, "nondet-taint"}}));
}

/** R12 is live on the real core: retarget the one wall-clock write
 *  from the exempt sim_seconds stat to a determinism sink and the
 *  taint rule must notice. */
TEST(LintTree, NondetTaintGuardsTheRealCoreStats)
{
    Options opt;
    opt.root = kRoot;
    const SourceFile header =
        lexFile(kRoot + "/" + opt.stats_header, opt.stats_header);
    const std::string core_rel = "src/core/ooo_core.cc";
    const SourceFile core =
        lexFile(kRoot + "/" + core_rel, core_rel);

    auto run = [&](const SourceFile &cc) {
        SymbolTable tab;
        tab.addFile(header, buildScopeTree(header));
        const ScopeTree tree = buildScopeTree(cc);
        tab.addFile(cc, tree);
        std::vector<Finding> out;
        ruleNondetTaint(cc, tree, tab, opt.taint_sink_suffixes,
                        opt.taint_sink_structs,
                        opt.taint_exempt_fields, out);
        return out;
    };
    EXPECT_TRUE(run(core).empty());

    // Pretend the steady_clock result were stored into 'cycles'
    // instead of the designated wall-clock stat.
    SourceFile broken = core;
    for (size_t i = 0; i + 1 < broken.toks.size(); ++i)
        if (broken.toks[i].text == "sim_seconds" &&
            broken.toks[i + 1].text == "=") {
            broken.toks[i].text = "cycles";
            break;
        }
    const std::vector<Finding> out = run(broken);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "nondet-taint");
    EXPECT_NE(out[0].message.find("CoreStats::cycles"),
              std::string::npos);
}

/** --jobs must not affect the findings, only the wall clock. */
TEST(LintTree, FindingsAreIdenticalAcrossJobCounts)
{
    Options serial;
    serial.root = kRoot;
    Options threaded = serial;
    threaded.jobs = 4;
    const std::vector<Finding> a = lintTree(serial);
    const std::vector<Finding> b = lintTree(threaded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].pretty(), b[i].pretty());
}

} // namespace
} // namespace redsoc::lint

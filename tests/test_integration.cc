/**
 * @file
 * Integration tests: real workloads through the full stack (trace ->
 * cores x modes) via the SimDriver, checking the paper's headline
 * qualitative results on a fast subset.
 */

#include <gtest/gtest.h>

#include "baselines/timing_speculation.h"
#include "sim/driver.h"

namespace redsoc {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    SimDriver driver;
};

TEST_F(IntegrationTest, DriverCachesTracesAndRuns)
{
    const Trace &a = driver.trace("crc");
    const Trace &b = driver.trace("crc");
    EXPECT_EQ(&a, &b);

    const CoreConfig cfg = configFor("medium", SchedMode::Baseline);
    const CoreStats &r1 = driver.run("crc", cfg);
    const CoreStats &r2 = driver.run("crc", cfg);
    EXPECT_EQ(&r1, &r2);
    EXPECT_GT(r1.cycles, 0u);
}

TEST_F(IntegrationTest, ConfigKeysDistinguishVariants)
{
    CoreConfig a = configFor("medium", SchedMode::Baseline);
    CoreConfig b = configFor("medium", SchedMode::ReDSOC);
    CoreConfig c = b;
    c.slack_threshold_ticks = 2;
    EXPECT_NE(SimDriver::configKey(a), SimDriver::configKey(b));
    EXPECT_NE(SimDriver::configKey(b), SimDriver::configKey(c));
}

TEST_F(IntegrationTest, RedsocSpeedsUpComputeKernels)
{
    for (const char *name : {"crc", "bitcnt"}) {
        const double s =
            driver.speedup(name, configFor("big", SchedMode::Baseline),
                           configFor("big", SchedMode::ReDSOC));
        EXPECT_GT(s, 1.10) << name; // high-slack kernels gain a lot
    }
}

TEST_F(IntegrationTest, MemoryBoundKernelsGainLess)
{
    const double compute =
        driver.speedup("bitcnt", configFor("big", SchedMode::Baseline),
                       configFor("big", SchedMode::ReDSOC));
    const double memory =
        driver.speedup("xalanc", configFor("big", SchedMode::Baseline),
                       configFor("big", SchedMode::ReDSOC));
    EXPECT_GT(compute, memory);
}

TEST_F(IntegrationTest, RedsocBeatsMosOnRealKernels)
{
    const CoreConfig base = configFor("big", SchedMode::Baseline);
    double red_total = 0.0, mos_total = 0.0;
    for (const char *name : {"crc", "gsm", "bitcnt"}) {
        red_total +=
            driver.speedup(name, base, configFor("big", SchedMode::ReDSOC));
        mos_total +=
            driver.speedup(name, base, configFor("big", SchedMode::MOS));
    }
    EXPECT_GT(red_total, mos_total);
}

TEST_F(IntegrationTest, TimingSpeculationIsBounded)
{
    const CoreConfig base = configFor("medium", SchedMode::Baseline);
    const Trace &trace = driver.trace("gsm");
    const Cycle base_cycles = driver.run("gsm", base).cycles;
    TimingSpeculation ts;
    const auto result = ts.run(trace, base, base_cycles);
    EXPECT_LE(result.error_rate, 0.01);
    EXPECT_GE(result.speedup, 0.9); // never catastrophically worse
    EXPECT_LT(result.period_ps, 500u);
}

TEST_F(IntegrationTest, FuStallsRiseUnderRedsoc)
{
    // Fig.14: slack recycling trades FU occupancy for latency.
    const CoreStats &base =
        driver.run("crc", configFor("small", SchedMode::Baseline));
    const CoreStats &red =
        driver.run("crc", configFor("small", SchedMode::ReDSOC));
    EXPECT_GE(red.fuStallRate(), base.fuStallRate());
}

TEST_F(IntegrationTest, TagMispredictionStaysLow)
{
    // Fig.12: P/GP (last-arrival) misprediction around 1%.
    const CoreStats &red =
        driver.run("gsm", configFor("big", SchedMode::ReDSOC));
    if (red.la_predictions > 0) {
        EXPECT_LT(red.laMispredictRate(), 0.08);
    }
}

TEST_F(IntegrationTest, WidthPredictorAggressiveRateTiny)
{
    // Sec.II-B: aggressive mispredictions ~0.3-0.4%.
    const CoreStats &red =
        driver.run("corners", configFor("medium", SchedMode::ReDSOC));
    EXPECT_GT(red.width_predictions, 0u);
    EXPECT_LT(red.widthAggressiveRate(), 0.02);
}

TEST_F(IntegrationTest, MeanHelper)
{
    EXPECT_DOUBLE_EQ(SimDriver::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(SimDriver::mean({}), 0.0);
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Fuzzing regression suite.
 *
 * Three layers, matching DESIGN.md §11:
 *   1. Corpus replay — every minimized fixture under tests/fuzz_corpus/
 *      is parsed and re-run through the full differential oracle
 *      (Scan vs Event, traced vs untraced); a fixture that diverges
 *      again means a fixed bug regressed.
 *   2. Deadlock-watchdog boundary — both kernels must abort a
 *      no-commit run on exactly the same cycle (the event kernel's
 *      idle fast-forward clamps to the horizon; the scan kernel walks
 *      there cycle by cycle).
 *   3. Invariant audit — every InvariantAudit enumerator has a unit
 *      test that corrupts the checked state and asserts the exact
 *      violation fires (the lint rule audit-complete enforces that
 *      this file mentions every enumerator), plus an end-to-end run
 *      with REDSOC_AUDIT=1.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/invariant_audit.h"
#include "fuzz_lib.h"

namespace redsoc::fuzz {
namespace {

#ifndef REDSOC_FUZZ_CORPUS
#error "REDSOC_FUZZ_CORPUS must point at tests/fuzz_corpus"
#endif

const std::string kCorpus = REDSOC_FUZZ_CORPUS;

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> out;
    for (const auto &ent :
         std::filesystem::directory_iterator(kCorpus))
        if (ent.path().extension() == ".fuzz")
            out.push_back(ent.path().string());
    std::sort(out.begin(), out.end());
    return out;
}

FuzzCase
loadFixture(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return parseCase(text.str());
}

// ---------------------------------------------------------------------
// 1. Corpus replay
// ---------------------------------------------------------------------

TEST(FuzzCorpus, HasCommittedFixtures)
{
    EXPECT_GE(corpusFiles().size(), 6u);
}

TEST(FuzzCorpus, EveryFixtureAgreesUnderTheFullOracle)
{
    for (const std::string &path : corpusFiles()) {
        const FuzzCase fc = loadFixture(path);
        EXPECT_EQ(checkCase(fc), "") << path;
    }
}

TEST(FuzzCorpus, FixturesRoundTripThroughTheSerializer)
{
    for (const std::string &path : corpusFiles()) {
        const FuzzCase fc = loadFixture(path);
        const FuzzCase again = parseCase(serializeCase(fc));
        // Serialization is canonical: one round trip is a fixpoint.
        EXPECT_EQ(serializeCase(fc), serializeCase(again)) << path;
    }
}

// ---------------------------------------------------------------------
// Harness self-tests: the oracle and generator must be trustworthy
// ---------------------------------------------------------------------

TEST(FuzzHarness, GenerationIsDeterministicPerSeed)
{
    EXPECT_EQ(serializeCase(randomCase(42)),
              serializeCase(randomCase(42)));
    EXPECT_NE(serializeCase(randomCase(42)),
              serializeCase(randomCase(43)));
}

TEST(FuzzHarness, EveryGeneratedPointBuildsAndAgrees)
{
    for (u64 seed = 1000; seed < 1016; ++seed) {
        const FuzzCase fc = randomCase(seed);
        EXPECT_FALSE(fc.prog.empty());
        EXPECT_EQ(checkCase(fc), "") << "seed " << seed;
    }
}

TEST(FuzzHarness, DiffOutcomeReportsTheFirstDifferingField)
{
    RunOutcome a;
    a.stats.cycles = 100;
    a.stats.committed = 40;
    RunOutcome b = a;
    EXPECT_EQ(diffOutcome(a, b), "");

    b.stats.commit_checksum ^= 1;
    EXPECT_NE(diffOutcome(a, b).find("commit_checksum"),
              std::string::npos);

    b = a;
    b.deadlock = true;
    EXPECT_NE(diffOutcome(a, b).find("deadlock"), std::string::npos);

    a.deadlock = true;
    a.deadlock_cycle = 7;
    b.deadlock_cycle = 9;
    EXPECT_NE(diffOutcome(a, b).find("deadlock_cycle"),
              std::string::npos);
    // Deadlocked runs carry no meaningful stats beyond the cycle.
    b.deadlock_cycle = 7;
    EXPECT_EQ(diffOutcome(a, b), "");
}

TEST(FuzzHarness, MinimizeReturnsACleanCaseUnchanged)
{
    const FuzzCase fc = randomCase(7);
    ASSERT_EQ(checkCase(fc), "");
    EXPECT_EQ(serializeCase(minimizeCase(fc)), serializeCase(fc));
}

TEST(FuzzHarness, ParserRejectsMalformedFixtures)
{
    EXPECT_THROW(parseCase(""), std::runtime_error);
    EXPECT_THROW(parseCase("config core=medium\n"), std::runtime_error);
    EXPECT_THROW(parseCase("inst alu sel=1 d=1 a=1 b=1 imm=0\n"),
                 std::runtime_error);
    EXPECT_THROW(
        parseCase("config core=warp\ninst alu sel=1 d=1 a=1 b=1 imm=0\n"),
        std::runtime_error);
    EXPECT_THROW(
        parseCase("config core=small bogus=1\ninst alu sel=1 d=1 a=1 "
                  "b=1 imm=0\n"),
        std::runtime_error);
    EXPECT_THROW(
        parseCase("config core=small\ninst warp sel=1 d=1 a=1 b=1 "
                  "imm=0\n"),
        std::runtime_error);
}

// ---------------------------------------------------------------------
// Multi-core points: generator, oracle, and fixture format
// ---------------------------------------------------------------------

TEST(FuzzProc, GenerationIsDeterministicPerSeed)
{
    EXPECT_EQ(serializeCase(randomProcCase(42)),
              serializeCase(randomProcCase(42)));
    EXPECT_NE(serializeCase(randomProcCase(42)),
              serializeCase(randomProcCase(43)));
    // The proc and scalar streams are salted differently.
    EXPECT_NE(serializeCase(randomProcCase(42)),
              serializeCase(randomCase(42)));
}

TEST(FuzzProc, EveryGeneratedPointBuildsAndAgrees)
{
    bool saw_multi = false;
    for (u64 seed = 2000; seed < 2010; ++seed) {
        const FuzzCase fc = randomProcCase(seed);
        EXPECT_FALSE(fc.prog.empty());
        EXPECT_EQ(fc.extra_progs.size(), fc.cores - 1);
        saw_multi |= fc.cores > 1;
        EXPECT_EQ(checkCase(fc), "") << "proc seed " << seed;
    }
    EXPECT_TRUE(saw_multi) << "distribution never drew > 1 core";
}

TEST(FuzzProc, FixtureRoundTripsMultiCoreCases)
{
    for (u64 seed = 2000; seed < 2010; ++seed) {
        const FuzzCase fc = randomProcCase(seed);
        const FuzzCase again = parseCase(serializeCase(fc));
        EXPECT_EQ(serializeCase(again), serializeCase(fc))
            << "proc seed " << seed;
        EXPECT_EQ(again.cores, fc.cores);
        EXPECT_EQ(again.extra_progs.size(), fc.extra_progs.size());
        // The shared-hierarchy knobs are inert (and deliberately not
        // serialized) for a single-core draw.
        if (fc.cores > 1) {
            EXPECT_EQ(again.llc_kb, fc.llc_kb);
            EXPECT_EQ(again.dram_banks, fc.dram_banks);
            EXPECT_EQ(again.bank_occupancy, fc.bank_occupancy);
            EXPECT_EQ(again.share_addr, fc.share_addr);
        }
    }
}

TEST(FuzzProc, ParserRejectsMalformedProcFixtures)
{
    const std::string base =
        "config core=small\ninst alu sel=1 d=1 a=1 b=1 imm=0\n";
    // Zero or absurd core counts.
    EXPECT_THROW(parseCase(base + "proc cores=0\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCase(base + "proc cores=65\n"),
                 std::runtime_error);
    // A core section with no proc line, or out of sequence.
    EXPECT_THROW(parseCase(base + "core 1\ninst alu sel=1 d=1 a=1 "
                                  "b=1 imm=0\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCase(base + "proc cores=3\ncore 2\ninst alu "
                                  "sel=1 d=1 a=1 b=1 imm=0\n"),
                 std::runtime_error);
    // Missing or empty extra-core programs.
    EXPECT_THROW(parseCase(base + "proc cores=2\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCase(base + "proc cores=2\ncore 1\n"),
                 std::runtime_error);
    EXPECT_THROW(parseCase(base + "proc bogus=1\n"),
                 std::runtime_error);
}

TEST(FuzzProc, DiffProcOutcomeWalksEveryLayer)
{
    ProcOutcome a;
    a.stats.cycles = 500;
    a.stats.cores.resize(2);
    a.stats.llc.per_core.resize(2);
    ProcOutcome b = a;
    EXPECT_EQ(diffProcOutcome(a, b), "");

    b.stats.cycles = 501;
    EXPECT_NE(diffProcOutcome(a, b).find("cycles"), std::string::npos);

    b = a;
    b.stats.cores[1].commit_checksum ^= 1;
    const std::string core_diff = diffProcOutcome(a, b);
    EXPECT_NE(core_diff.find("core 1"), std::string::npos);
    EXPECT_NE(core_diff.find("commit_checksum"), std::string::npos);

    b = a;
    b.stats.llc.per_core[0].mshr_merges = 9;
    const std::string llc_diff = diffProcOutcome(a, b);
    EXPECT_NE(llc_diff.find("llc core 0"), std::string::npos);
    EXPECT_NE(llc_diff.find("mshr_merges"), std::string::npos);

    b = a;
    b.stats.llc.writebacks = 3;
    EXPECT_NE(diffProcOutcome(a, b).find("llc.writebacks"),
              std::string::npos);

    b = a;
    b.deadlock = true;
    EXPECT_NE(diffProcOutcome(a, b).find("deadlock"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// 2. Deadlock-watchdog boundary
// ---------------------------------------------------------------------

FuzzCase
deadlockingCase(Cycle horizon)
{
    FuzzCase fc;
    fc.name = "deadlock";
    fc.config = smallCore();
    fc.config.no_commit_horizon = horizon;
    fc.config.memory.mem_latency = 3000;
    fc.config.memory.prefetch = false;
    FuzzInst load;
    load.kind = FuzzInst::Kind::Load;
    fc.prog.push_back(load);
    return fc;
}

TEST(DeadlockHorizon, BothKernelsAbortOnTheSameCycle)
{
    const FuzzCase fc = deadlockingCase(60);
    const Trace trace = buildTrace(fc);
    const RunOutcome scan =
        runOne(trace, fc.config, SchedKernel::Scan, false);
    const RunOutcome event =
        runOne(trace, fc.config, SchedKernel::Event, false);
    ASSERT_TRUE(scan.deadlock);
    ASSERT_TRUE(event.deadlock);
    EXPECT_EQ(scan.deadlock_cycle, event.deadlock_cycle);
}

TEST(DeadlockHorizon, AbortCycleTracksTheHorizonExactly)
{
    // The watchdog fires at last_commit + horizon + 1 in both
    // kernels: lengthening the horizon by one must move the abort
    // by exactly one cycle (the event kernel's fast-forward clamp
    // cannot overshoot it, a strict > check cannot fire early).
    const Trace trace = buildTrace(deadlockingCase(60));
    for (const SchedKernel kernel :
         {SchedKernel::Scan, SchedKernel::Event}) {
        const RunOutcome h60 =
            runOne(trace, deadlockingCase(60).config, kernel, false);
        const RunOutcome h61 =
            runOne(trace, deadlockingCase(61).config, kernel, false);
        ASSERT_TRUE(h60.deadlock && h61.deadlock);
        EXPECT_EQ(h61.deadlock_cycle, h60.deadlock_cycle + 1);
    }
}

TEST(DeadlockHorizon, DeadlockErrorCarriesTheAbortCycle)
{
    const FuzzCase fc = deadlockingCase(60);
    const Trace trace = buildTrace(fc);
    CoreConfig config = fc.config;
    config.sched_kernel = SchedKernel::Scan;
    OooCore core(std::move(config));
    try {
        core.run(trace);
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_GT(e.cycle(), 60u);
        EXPECT_NE(std::string(e.what()).find("no commit progress"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// 3. Invariant audit: every check fires on corrupted state
// ---------------------------------------------------------------------

/** The violation a check returned, or FAIL accessors on nullopt. */
void
expectViolation(const std::optional<AuditViolation> &v,
                InvariantAudit kind, const std::string &substr)
{
    ASSERT_TRUE(v.has_value()) << invariantAuditName(kind);
    EXPECT_EQ(v->kind, kind);
    EXPECT_NE(v->message.find(substr), std::string::npos)
        << v->message;
}

TEST(InvariantAuditChecks, RsAgeOrder)
{
    EXPECT_FALSE(InvariantAuditor::checkAgeOrder({}).has_value());
    EXPECT_FALSE(InvariantAuditor::checkAgeOrder({3, 5, 9}).has_value());
    expectViolation(InvariantAuditor::checkAgeOrder({3, 9, 5}),
                    InvariantAudit::RsAgeOrder, "out of age order");
    expectViolation(InvariantAuditor::checkAgeOrder({3, 3}),
                    InvariantAudit::RsAgeOrder, "slot 0 holds seq 3");
}

TEST(InvariantAuditChecks, RsPendingCount)
{
    EXPECT_FALSE(
        InvariantAuditor::checkPendingCount(7, 2, 2).has_value());
    expectViolation(InvariantAuditor::checkPendingCount(7, 2, 1),
                    InvariantAudit::RsPendingCount,
                    "records 2 pending wakeups but 1");
}

TEST(InvariantAuditChecks, RobProgramOrder)
{
    EXPECT_FALSE(InvariantAuditor::checkProgramOrder(
                     InvariantAudit::RobProgramOrder, {1, 2, 8})
                     .has_value());
    expectViolation(
        InvariantAuditor::checkProgramOrder(
            InvariantAudit::RobProgramOrder, {1, 8, 2}),
        InvariantAudit::RobProgramOrder, "ROB violates program order");
}

TEST(InvariantAuditChecks, LsqProgramOrder)
{
    expectViolation(
        InvariantAuditor::checkProgramOrder(
            InvariantAudit::LsqProgramOrder, {4, 4}),
        InvariantAudit::LsqProgramOrder, "LSQ violates program order");
}

TEST(InvariantAuditChecks, CiRange)
{
    EXPECT_FALSE(InvariantAuditor::checkCiRange(9, 0, 8).has_value());
    EXPECT_FALSE(InvariantAuditor::checkCiRange(9, 7, 8).has_value());
    expectViolation(InvariantAuditor::checkCiRange(9, 8, 8),
                    InvariantAudit::CiRange, "outside [0, 8)");
}

TEST(InvariantAuditChecks, EgpwLeftoverSlot)
{
    EXPECT_FALSE(
        InvariantAuditor::checkEgpwLeftover(5, 1).has_value());
    expectViolation(InvariantAuditor::checkEgpwLeftover(5, 0),
                    InvariantAudit::EgpwLeftoverSlot,
                    "no leftover FU slot");
}

TEST(InvariantAuditChecks, TransparentLink)
{
    // Producer wrote back at tick 33, consumer starts there, CI 1.
    EXPECT_FALSE(InvariantAuditor::checkTransparentLink(6, 2, 33, 33, 1)
                     .has_value());
    expectViolation(
        InvariantAuditor::checkTransparentLink(6, kNoSeq, 0, 33, 1),
        InvariantAudit::TransparentLink, "names no producer");
    expectViolation(
        InvariantAuditor::checkTransparentLink(6, 2, 32, 33, 1),
        InvariantAudit::TransparentLink, "wrote back at tick 32");
    expectViolation(
        InvariantAuditor::checkTransparentLink(6, 2, 32, 32, 0),
        InvariantAudit::TransparentLink, "cycle boundary");
}

TEST(InvariantAuditChecks, ReadyRsAgreement)
{
    constexpr Cycle never = InvariantAuditor::kNeverArmed;
    // Reachable: pending producer, parked, in a ready set, or a
    // live future arm.
    EXPECT_FALSE(InvariantAuditor::checkReadyAgreement(
                     3, 1, never, 50, false, false)
                     .has_value());
    EXPECT_FALSE(InvariantAuditor::checkReadyAgreement(
                     3, 0, never, 50, true, false)
                     .has_value());
    EXPECT_FALSE(InvariantAuditor::checkReadyAgreement(
                     3, 0, 40, 50, false, true)
                     .has_value());
    EXPECT_FALSE(InvariantAuditor::checkReadyAgreement(
                     3, 0, 51, 50, false, false)
                     .has_value());
    expectViolation(InvariantAuditor::checkReadyAgreement(
                        3, 0, never, 50, false, false),
                    InvariantAudit::ReadyRsAgreement, "never armed");
    expectViolation(InvariantAuditor::checkReadyAgreement(
                        3, 0, 50, 50, false, false),
                    InvariantAudit::ReadyRsAgreement,
                    "last armed for past cycle 50");
}

TEST(InvariantAuditNames, EveryEnumeratorHasAUniqueName)
{
    std::vector<std::string> names;
    for (unsigned k = 0;
         k < static_cast<unsigned>(InvariantAudit::NUM); ++k)
        names.push_back(
            invariantAuditName(static_cast<InvariantAudit>(k)));
    std::vector<std::string> uniq = names;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    EXPECT_EQ(uniq.size(), names.size());
    EXPECT_EQ(std::count(names.begin(), names.end(), "?"), 0);
}

TEST(InvariantAuditEnd2End, AuditedRunsMatchUnauditedRuns)
{
    // The audit must be an observer: REDSOC_AUDIT=1 runs produce
    // bit-identical stats, and every corpus fixture passes with the
    // auditor checking each cycle.
    ASSERT_EQ(setenv("REDSOC_AUDIT", "1", 1), 0);
    ASSERT_TRUE(InvariantAuditor::enabledFromEnv());
    for (const std::string &path : corpusFiles()) {
        const FuzzCase fc = loadFixture(path);
        EXPECT_EQ(checkCase(fc), "") << path << " (REDSOC_AUDIT=1)";
    }
    ASSERT_EQ(unsetenv("REDSOC_AUDIT"), 0);
    EXPECT_FALSE(InvariantAuditor::enabledFromEnv());
}

} // namespace
} // namespace redsoc::fuzz

/**
 * @file
 * Functional-interpreter tests: scalar/SIMD/memory/control semantics,
 * trace contents (effective widths, branch outcomes, addresses), and
 * the memory image.
 */

#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "func/interpreter.h"
#include "isa/builder.h"

namespace redsoc {
namespace {

u64
runAndReadReg(ProgramBuilder &b, RegIdx r, MemoryImage *mem = nullptr)
{
    MemoryImage local;
    MemoryImage &m = mem ? *mem : local;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, m);
    interp.run();
    return interp.reg(r);
}

TEST(MemoryImage, ScalarReadWriteLittleEndian)
{
    MemoryImage mem;
    mem.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x1000, 1), 0x88u);
    EXPECT_EQ(mem.read(0x1001, 2), 0x6677u);
    EXPECT_EQ(mem.read(0x1004, 4), 0x11223344u);
}

TEST(MemoryImage, UntouchedMemoryReadsZero)
{
    MemoryImage mem;
    EXPECT_EQ(mem.read(0xdeadbeef, 8), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage mem;
    const Addr addr = 0x1FFE; // straddles a 4K page boundary
    mem.write(addr, 0xAABBCCDD, 4);
    EXPECT_EQ(mem.read(addr, 4), 0xAABBCCDDu);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(MemoryImage, VectorAndDoubleHelpers)
{
    MemoryImage mem;
    mem.writeVec(0x100, Vec128{0x1111, 0x2222});
    const Vec128 v = mem.readVec(0x100);
    EXPECT_EQ(v.lo, 0x1111u);
    EXPECT_EQ(v.hi, 0x2222u);
    mem.pokeF64(0x200, 2.5);
    EXPECT_DOUBLE_EQ(mem.peekF64(0x200), 2.5);
}

TEST(Vec128, LaneAccessors)
{
    Vec128 v;
    v.setLane(VecType::I16, 0, 0x1234);
    v.setLane(VecType::I16, 7, 0xFFFF);
    EXPECT_EQ(v.lane(VecType::I16, 0), 0x1234u);
    EXPECT_EQ(v.lane(VecType::I16, 7), 0xFFFFu);
    EXPECT_EQ(v.laneSigned(VecType::I16, 7), -1);
    v.setLane(VecType::I8, 15, 0xAB);
    EXPECT_EQ(v.lane(VecType::I8, 15), 0xABu);
}

TEST(Interpreter, LogicalAndMoveSemantics)
{
    ProgramBuilder b("logic");
    b.movImm(x(1), 0xF0F0);
    b.movImm(x(2), 0x0FF0);
    b.alu(Opcode::AND, x(3), x(1), x(2));
    b.alu(Opcode::ORR, x(4), x(1), x(2));
    b.alu(Opcode::EOR, x(5), x(1), x(2));
    b.alu(Opcode::BIC, x(6), x(1), x(2));
    b.mvn(x(7), x(1));
    b.alu(Opcode::TST, x(8), x(1), x(2));
    b.alu(Opcode::TEQ, x(9), x(1), x(2));
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(3)), 0x00F0u);
    EXPECT_EQ(interp.reg(x(4)), 0xFFF0u);
    EXPECT_EQ(interp.reg(x(5)), 0xFF00u);
    EXPECT_EQ(interp.reg(x(6)), 0xF000u);
    EXPECT_EQ(interp.reg(x(7)), ~u64{0xF0F0});
    EXPECT_EQ(interp.reg(x(8)), 1u);
    EXPECT_EQ(interp.reg(x(9)), 1u);
}

TEST(Interpreter, ShiftsAndRotates)
{
    ProgramBuilder b("shift");
    b.movImm(x(1), 0x80000000000000F1ull);
    b.lslImm(x(2), x(1), 4);
    b.lsrImm(x(3), x(1), 4);
    b.asrImm(x(4), x(1), 4);
    b.rorImm(x(5), x(1), 4);
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(2)), 0x0000000000000F10ull);
    EXPECT_EQ(interp.reg(x(3)), 0x080000000000000Full);
    EXPECT_EQ(interp.reg(x(4)), 0xF80000000000000Full);
    EXPECT_EQ(interp.reg(x(5)), 0x180000000000000Full);
}

TEST(Interpreter, ArithmeticIncludingCompare)
{
    ProgramBuilder b("arith");
    b.movImm(x(1), 100);
    b.movImm(x(2), 30);
    b.alu(Opcode::ADD, x(3), x(1), x(2));
    b.alu(Opcode::SUB, x(4), x(1), x(2));
    b.alu(Opcode::RSB, x(5), x(1), x(2));
    b.alu(Opcode::CMP, x(6), x(1), x(2));
    b.alu(Opcode::CMP, x(7), x(2), x(1));
    b.alu(Opcode::CMP, x(8), x(1), x(1));
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(3)), 130u);
    EXPECT_EQ(interp.reg(x(4)), 70u);
    EXPECT_EQ(interp.reg(x(5)), static_cast<u64>(-70));
    EXPECT_EQ(interp.reg(x(6)), 1u);
    EXPECT_EQ(interp.reg(x(7)), static_cast<u64>(-1));
    EXPECT_EQ(interp.reg(x(8)), 0u);
}

TEST(Interpreter, ShiftedOperandForm)
{
    ProgramBuilder b("shop");
    b.movImm(x(1), 100);
    b.movImm(x(2), 7);
    b.aluShifted(Opcode::ADD, x(3), x(1), x(2), ShiftKind::Lsl, 3);
    b.aluShifted(Opcode::SUB, x(4), x(1), x(2), ShiftKind::Lsl, 2);
    b.halt();
    EXPECT_EQ(runAndReadReg(b, x(3)), 100u + (7u << 3));
}

TEST(Interpreter, MultiplyDivide)
{
    ProgramBuilder b("muldiv");
    b.movImm(x(1), 12);
    b.movImm(x(2), -5);
    b.mul(x(3), x(1), x(2));
    b.movImm(x(4), 7);
    b.mla(x(5), x(1), x(4), x(1)); // 12*7 + 12
    b.sdiv(x(6), x(2), x(1));      // -5 / 12 == 0
    b.movImm(x(7), 100);
    b.movImm(x(8), 7);
    b.udiv(x(9), x(7), x(8));
    b.sdiv(x(10), x(7), kZeroReg); // div by zero -> 0
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(3)), static_cast<u64>(-60));
    EXPECT_EQ(interp.reg(x(5)), 96u);
    EXPECT_EQ(interp.reg(x(6)), 0u);
    EXPECT_EQ(interp.reg(x(9)), 14u);
    EXPECT_EQ(interp.reg(x(10)), 0u);
}

TEST(Interpreter, FloatingPoint)
{
    ProgramBuilder b("fp");
    b.fmovImm(x(1), 2.5);
    b.fmovImm(x(2), 4.0);
    b.fop(Opcode::FADD, x(3), x(1), x(2));
    b.fop(Opcode::FMUL, x(4), x(1), x(2));
    b.fop(Opcode::FDIV, x(5), x(2), x(1));
    b.fop(Opcode::FMAX, x(6), x(1), x(2));
    b.fcvtzs(x(7), x(4));
    b.movImm(x(8), -3);
    b.scvtf(x(9), x(8));
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    auto as_double = [&](RegIdx r) {
        double d;
        const u64 raw = interp.reg(r);
        std::memcpy(&d, &raw, sizeof(d));
        return d;
    };
    EXPECT_DOUBLE_EQ(as_double(x(3)), 6.5);
    EXPECT_DOUBLE_EQ(as_double(x(4)), 10.0);
    EXPECT_DOUBLE_EQ(as_double(x(5)), 1.6);
    EXPECT_DOUBLE_EQ(as_double(x(6)), 4.0);
    EXPECT_EQ(interp.reg(x(7)), 10u);
    EXPECT_DOUBLE_EQ(as_double(x(9)), -3.0);
}

TEST(Interpreter, LoadsStoresAndAddressing)
{
    MemoryImage mem;
    mem.poke64(0x1000, 0xCAFEBABEDEADBEEFull);
    ProgramBuilder b("mem");
    b.movImm(x(1), 0x1000);
    b.load(Opcode::LDR, x(2), x(1), 0);
    b.load(Opcode::LDRB, x(3), x(1), 0); // 0xEF
    b.load(Opcode::LDRH, x(4), x(1), 0); // 0xBEEF
    b.load(Opcode::LDRW, x(5), x(1), 4); // 0xCAFEBABE
    b.movImm(x(6), 2);
    b.loadIdx(Opcode::LDRB, x(7), x(1), x(6), 1); // byte at +4: 0xBE
    b.store(Opcode::STRW, x(5), x(1), 8);
    b.load(Opcode::LDRW, x(8), x(1), 8);
    b.halt();

    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(2)), 0xCAFEBABEDEADBEEFull);
    EXPECT_EQ(interp.reg(x(3)), 0xEFu);
    EXPECT_EQ(interp.reg(x(4)), 0xBEEFu);
    EXPECT_EQ(interp.reg(x(5)), 0xCAFEBABEu);
    EXPECT_EQ(interp.reg(x(7)), 0xBEu);
    EXPECT_EQ(interp.reg(x(8)), 0xCAFEBABEu);
}

TEST(Interpreter, SimdLaneOperations)
{
    MemoryImage mem;
    for (unsigned i = 0; i < 8; ++i) {
        mem.poke16(0x100 + 2 * i, static_cast<u16>(i + 1));
        mem.poke16(0x200 + 2 * i, static_cast<u16>(10 * (i + 1)));
    }
    ProgramBuilder b("simd");
    b.movImm(x(1), 0x100);
    b.movImm(x(2), 0x200);
    b.vldr(v(0), x(1), 0);
    b.vldr(v(1), x(2), 0);
    b.vop(Opcode::VADD, v(2), v(0), v(1), VecType::I16);
    b.vmla(v(3), v(0), v(1), VecType::I16); // v3 starts at 0
    b.vop(Opcode::VMAX, v(4), v(0), v(1), VecType::I16);
    b.vshiftImm(Opcode::VSHR, v(5), v(1), 1, VecType::I16);
    b.vredsum(x(3), v(0), VecType::I16); // 1+..+8 = 36
    b.movImm(x(4), 5);
    b.vdup(v(6), x(4), VecType::I16);
    b.movImm(x(5), 0x300);
    b.vstr(v(2), x(5), 0);
    b.halt();

    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.vecReg(2).lane(VecType::I16, 0), 11u);
    EXPECT_EQ(interp.vecReg(2).lane(VecType::I16, 7), 88u);
    EXPECT_EQ(interp.vecReg(3).lane(VecType::I16, 3), 4u * 40);
    EXPECT_EQ(interp.vecReg(4).lane(VecType::I16, 2), 30u);
    EXPECT_EQ(interp.vecReg(5).lane(VecType::I16, 1), 10u);
    EXPECT_EQ(interp.reg(x(3)), 36u);
    EXPECT_EQ(interp.vecReg(6).lane(VecType::I16, 5), 5u);
    EXPECT_EQ(mem.read(0x300, 2), 11u);
}

TEST(Interpreter, SimdSignedMinMax)
{
    ProgramBuilder b("sminmax");
    b.movImm(x(1), static_cast<s64>(static_cast<u16>(-5)));
    b.vdup(v(0), x(1), VecType::I16); // all lanes -5
    b.movImm(x(2), 3);
    b.vdup(v(1), x(2), VecType::I16);
    b.vop(Opcode::VMAX, v(2), v(0), v(1), VecType::I16);
    b.vop(Opcode::VMIN, v(3), v(0), v(1), VecType::I16);
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.vecReg(2).laneSigned(VecType::I16, 0), 3);
    EXPECT_EQ(interp.vecReg(3).laneSigned(VecType::I16, 0), -5);
}

TEST(Interpreter, BranchesAndCalls)
{
    ProgramBuilder b("ctrl");
    auto func = b.newLabel();
    auto after = b.newLabel();
    auto loop = b.newLabel();
    b.movImm(x(1), 3);
    b.movImm(x(2), 0);
    b.bind(loop);
    b.alui(Opcode::ADD, x(2), x(2), 10);
    b.alui(Opcode::SUB, x(1), x(1), 1);
    b.bnez(x(1), loop);
    b.bl(func);
    b.b(after);
    b.bind(func);
    b.alui(Opcode::ADD, x(2), x(2), 100);
    b.ret();
    b.bind(after);
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    Trace trace = interp.run();
    EXPECT_EQ(interp.reg(x(2)), 130u);
    EXPECT_TRUE(interp.halted());

    // The trace records taken/not-taken outcomes.
    unsigned taken = 0, not_taken = 0;
    for (SeqNum s = 0; s < trace.size(); ++s) {
        if (isBranch(trace.inst(s).op))
            (trace.op(s).taken ? taken : not_taken)++;
    }
    EXPECT_EQ(taken, 2u + 1 + 1 + 1); // 2 loop-backs + BL + B + RET
    EXPECT_EQ(not_taken, 1u);         // final loop exit
}

TEST(Interpreter, TraceRecordsEffectiveWidths)
{
    ProgramBuilder b("width");
    b.movImm(x(1), 0xFF);        // 8-bit operand
    b.movImm(x(2), 0xFFFF);      // 16-bit operand
    b.alu(Opcode::ADD, x(3), x(1), x(2));
    b.halt();

    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    Trace trace = interp.run();
    // The ADD at index 2: max(8, 16) == 16.
    EXPECT_EQ(trace.op(2).eff_width, 16u);
}

TEST(Interpreter, TraceRecordsMemoryAddresses)
{
    MemoryImage mem;
    ProgramBuilder b("addrs");
    b.movImm(x(1), 0x4000);
    b.load(Opcode::LDR, x(2), x(1), 24);
    b.halt();
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    Trace trace = interp.run();
    EXPECT_EQ(trace.op(1).mem_addr, 0x4018u);
}

TEST(Interpreter, SignedDivideOverflowWraps)
{
    // INT64_MIN / -1 must not trap the simulator; ARM wraps.
    ProgramBuilder b("sdivmin");
    b.movImm(x(1), std::numeric_limits<s64>::min());
    b.movImm(x(2), -1);
    b.sdiv(x(3), x(1), x(2));
    b.halt();
    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(3)),
              static_cast<u64>(std::numeric_limits<s64>::min()));
}

TEST(Interpreter, ShiftAmountsAreModulo64)
{
    ProgramBuilder b("shmod");
    b.movImm(x(1), 0xF0);
    b.movImm(x(2), 68); // 68 & 63 == 4
    b.lsr(x(3), x(1), x(2));
    b.lsl(x(4), x(1), x(2));
    b.halt();
    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(3)), 0xFu);
    EXPECT_EQ(interp.reg(x(4)), 0xF00u);
}

TEST(Interpreter, NestedCallsThroughLinkRegister)
{
    // main -> outer -> (manual link save) inner -> back out.
    ProgramBuilder b("nest");
    auto outer = b.newLabel();
    auto inner = b.newLabel();
    auto done = b.newLabel();
    b.movImm(x(1), 0);
    b.bl(outer);
    b.b(done);
    b.bind(outer);
    b.mov(x(9), kLinkReg); // callee-saved link
    b.alui(Opcode::ADD, x(1), x(1), 1);
    b.bl(inner);
    b.mov(kLinkReg, x(9));
    b.ret();
    b.bind(inner);
    b.alui(Opcode::ADD, x(1), x(1), 10);
    b.ret();
    b.bind(done);
    b.halt();
    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    EXPECT_EQ(interp.reg(x(1)), 11u);
    EXPECT_TRUE(interp.halted());
}

TEST(Interpreter, VectorLanesDoNotBleed)
{
    // Per-lane adds with values that would carry across lanes if the
    // implementation were a plain 64-bit add.
    ProgramBuilder b("lanes");
    b.movImm(x(1), 0xFFFF);
    b.vdup(v(0), x(1), VecType::I16); // all lanes 0xFFFF
    b.movImm(x(2), 1);
    b.vdup(v(1), x(2), VecType::I16);
    b.vop(Opcode::VADD, v(2), v(0), v(1), VecType::I16);
    b.halt();
    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    interp.run();
    for (unsigned lane = 0; lane < 8; ++lane)
        EXPECT_EQ(interp.vecReg(2).lane(VecType::I16, lane), 0u)
            << "lane " << lane;
}

TEST(Interpreter, ZeroRegisterIsImmutable)
{
    ProgramBuilder b("xzr");
    b.movImm(x(1), 7);
    b.alu(Opcode::ADD, kZeroReg, x(1), x(1)); // write to xzr: dropped
    b.alu(Opcode::ADD, x(2), kZeroReg, x(1));
    b.halt();
    EXPECT_EQ(runAndReadReg(b, x(2)), 7u);
}

TEST(Interpreter, MaxOpsCapStopsRunawayPrograms)
{
    ProgramBuilder b("spin");
    auto loop = b.newLabel();
    b.bind(loop);
    b.alui(Opcode::ADD, x(1), x(1), 1);
    b.b(loop);
    MemoryImage mem;
    auto program = std::make_shared<const Program>(b.build());
    Interpreter interp(program, mem);
    Trace trace = interp.run(1000);
    EXPECT_EQ(trace.size(), 1000u);
    EXPECT_FALSE(interp.halted());
}

} // namespace
} // namespace redsoc

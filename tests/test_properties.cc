/**
 * @file
 * Property tests: parameterized sweeps over (workload x core x mode)
 * checking the invariants DESIGN.md §5 calls out — timing safety,
 * identical architectural work across modes, chain-statistic
 * consistency, precision monotonicity and determinism.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "sim/driver.h"

namespace redsoc {
namespace {

SimDriver &
sharedDriver()
{
    static SimDriver driver;
    return driver;
}

using SweepParam = std::tuple<std::string, std::string>; // workload, core

class ModeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ModeSweep, AllModesCommitEveryOp)
{
    const auto &[workload, core] = GetParam();
    const SeqNum n = sharedDriver().trace(workload).size();
    for (SchedMode mode :
         {SchedMode::Baseline, SchedMode::ReDSOC, SchedMode::MOS}) {
        const CoreStats &stats =
            sharedDriver().run(workload, configFor(core, mode));
        EXPECT_EQ(stats.committed, n) << schedModeName(mode);
    }
}

TEST_P(ModeSweep, RecyclingIsTimingSafeNetWin)
{
    // Non-speculative recycling must not lose cycles beyond noise
    // (wasted EGPW grants and 2-cycle holds are bounded by skewed
    // selection).
    const auto &[workload, core] = GetParam();
    const CoreStats &base =
        sharedDriver().run(workload, configFor(core, SchedMode::Baseline));
    const CoreStats &red =
        sharedDriver().run(workload, configFor(core, SchedMode::ReDSOC));
    EXPECT_LE(red.cycles, base.cycles + base.cycles / 50)
        << workload << " on " << core;
}

TEST_P(ModeSweep, MosNeverSlowsTheBaseline)
{
    const auto &[workload, core] = GetParam();
    const CoreStats &base =
        sharedDriver().run(workload, configFor(core, SchedMode::Baseline));
    const CoreStats &mos =
        sharedDriver().run(workload, configFor(core, SchedMode::MOS));
    EXPECT_LE(mos.cycles, base.cycles + base.cycles / 100);
}

TEST_P(ModeSweep, ChainStatisticsAreConsistent)
{
    const auto &[workload, core] = GetParam();
    const CoreStats &red =
        sharedDriver().run(workload, configFor(core, SchedMode::ReDSOC));
    // Tail-measured links cover every recycled op; fan-out (two
    // consumers recycling the same producer) double-counts shared
    // prefixes, so the tail sum is an upper bound.
    u64 links = 0;
    for (u64 len = 2; len <= red.chain_lengths.maxSample(); ++len)
        links += red.chain_lengths.bucket(len) * (len - 1);
    EXPECT_GE(links, red.recycled_ops) << workload << " " << core;
    if (red.recycled_ops > 0) {
        EXPECT_GT(links, 0u) << workload << " " << core;
    }
    // EGPW accounting sanity.
    EXPECT_LE(red.egpw_grants, red.egpw_requests);
    EXPECT_LE(red.egpw_wasted, red.egpw_grants);
}

TEST_P(ModeSweep, DeterministicReplay)
{
    const auto &[workload, core] = GetParam();
    const Trace &trace = sharedDriver().trace(workload);
    OooCore core_a(configFor(core, SchedMode::ReDSOC));
    OooCore core_b(configFor(core, SchedMode::ReDSOC));
    const CoreStats a = core_a.run(trace);
    const CoreStats b = core_b.run(trace);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.recycled_ops, b.recycled_ops);
    EXPECT_EQ(a.egpw_requests, b.egpw_requests);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByCore, ModeSweep,
    ::testing::Combine(::testing::Values("crc", "gsm", "xalanc", "act",
                                         "bzip2", "conv"),
                       ::testing::Values("small", "medium", "big")),
    [](const ::testing::TestParamInfo<SweepParam> &pinfo) {
        return std::get<0>(pinfo.param) + "_" +
               std::get<1>(pinfo.param);
    });

class PrecisionSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PrecisionSweep, FinerPrecisionNeverHurts)
{
    // Sec.V: performance saturates by 3 bits; coarser precision can
    // only lose (estimates quantize up more).
    const unsigned bits = GetParam();
    CoreConfig coarse = configFor("medium", SchedMode::ReDSOC);
    coarse.ci_precision_bits = bits;
    coarse.slack_threshold_ticks =
        (Tick{1} << bits) * 3 / 4; // scale threshold with precision
    CoreConfig fine = coarse;
    fine.ci_precision_bits = 8;
    fine.slack_threshold_ticks = Tick{192};

    const Cycle c_coarse =
        sharedDriver().run("crc", coarse).cycles;
    const Cycle c_fine = sharedDriver().run("crc", fine).cycles;
    EXPECT_GE(c_coarse + c_coarse / 25, c_fine)
        << "precision " << bits;
    if (bits >= 3) {
        // Saturation: within 2% of 8-bit precision from 3 bits up.
        EXPECT_LE(c_coarse, c_fine + c_fine / 50);
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, PrecisionSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

class ThresholdSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ThresholdSweep, ThresholdNeverBreaksExecution)
{
    CoreConfig cfg = configFor("small", SchedMode::ReDSOC);
    cfg.slack_threshold_ticks = GetParam();
    const CoreStats &stats = sharedDriver().run("gsm", cfg);
    EXPECT_EQ(stats.committed, sharedDriver().trace("gsm").size());
}

INSTANTIATE_TEST_SUITE_P(Ticks, ThresholdSweep,
                         ::testing::Values(0u, 2u, 4u, 6u, 8u));

TEST(Properties, SuiteMeansMatchPaperOrdering)
{
    // Fig.13's qualitative shape on the big core: MiBench gains the
    // most, SPEC the least, with a fast subset standing in for each
    // suite.
    SimDriver &driver = sharedDriver();
    const CoreConfig base = configFor("big", SchedMode::Baseline);
    const CoreConfig red = configFor("big", SchedMode::ReDSOC);

    const double mib =
        (driver.speedup("crc", base, red) +
         driver.speedup("bitcnt", base, red)) / 2.0;
    const double spec =
        (driver.speedup("xalanc", base, red) +
         driver.speedup("gsm", base, red)) / 2.0; // gsm as mid proxy
    EXPECT_GT(mib, 1.1);
    EXPECT_GT(mib, spec - 0.05);
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Timing-model tests: Fig.1 opcode-time shape, Fig.2 Kogge-Stone
 * width scaling, sub-cycle clock arithmetic, and PVT derating.
 */

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "timing/completion_instant.h"
#include "timing/kogge_stone.h"
#include "timing/timing_model.h"

namespace redsoc {
namespace {

Inst
makeInst(Opcode op, ShiftKind shift = ShiftKind::None)
{
    Inst i;
    i.op = op;
    i.src1 = x(1); // placeholder fields; timing only reads op/shift
    i.op2_shift = shift;
    i.shamt = shift == ShiftKind::None ? 0 : 3;
    return i;
}

TEST(KoggeStone, DelayGrowsLogarithmically)
{
    const Picos d1 = koggeStoneDelayPs(1);
    const Picos d4 = koggeStoneDelayPs(4);
    const Picos d16 = koggeStoneDelayPs(16);
    const Picos d64 = koggeStoneDelayPs(64);
    EXPECT_LT(d1, d4);
    EXPECT_LT(d4, d16);
    EXPECT_LT(d16, d64);
    // One prefix stage per doubling: equal steps (to rounding) from
    // 16 to 32 to 64.
    EXPECT_NEAR(static_cast<double>(koggeStoneDelayPs(32) - d16),
                static_cast<double>(d64 - koggeStoneDelayPs(32)), 1.0);
    // Calibration anchor: full-width matches Fig.1's ADD time.
    EXPECT_EQ(d64, 330u);
}

TEST(KoggeStone, PowerOfTwoBucketsShareDelay)
{
    // ceil(log2) plateaus: widths 9..16 share the 16-bit delay.
    EXPECT_EQ(koggeStoneDelayPs(9), koggeStoneDelayPs(16));
    EXPECT_NE(koggeStoneDelayPs(8), koggeStoneDelayPs(9));
}

TEST(KoggeStone, ScaleIsMonotoneAndBounded)
{
    double prev = 0.0;
    for (unsigned w = 1; w <= 64; ++w) {
        const double s = koggeStoneScale(w);
        EXPECT_GE(s, prev);
        EXPECT_LE(s, 1.0);
        prev = s;
    }
    EXPECT_DOUBLE_EQ(koggeStoneScale(64), 1.0);
}

TEST(TimingModel, Fig1OrderingHolds)
{
    TimingModel tm;
    // Logical < moves/shifts < arithmetic < arithmetic-with-shift.
    const Picos t_and = tm.scalarFullWidthPs(Opcode::AND, ShiftKind::None);
    const Picos t_mov = tm.scalarFullWidthPs(Opcode::MOV, ShiftKind::None);
    const Picos t_lsr = tm.scalarFullWidthPs(Opcode::LSR, ShiftKind::None);
    const Picos t_add = tm.scalarFullWidthPs(Opcode::ADD, ShiftKind::None);
    const Picos t_add_lsr =
        tm.scalarFullWidthPs(Opcode::ADD, ShiftKind::Lsr);
    const Picos t_sub_ror =
        tm.scalarFullWidthPs(Opcode::SUB, ShiftKind::Ror);
    EXPECT_LT(t_and, t_mov);
    EXPECT_LT(t_mov, t_lsr);
    EXPECT_LT(t_lsr, t_add);
    EXPECT_LT(t_add, t_add_lsr);
    // Fig.1 magnitudes: logical ~100ps, arith ~330ps, shifted ~450ps.
    EXPECT_NEAR(t_and, 105, 20);
    EXPECT_NEAR(t_add, 330, 20);
    EXPECT_NEAR(t_add_lsr, 450, 25);
    EXPECT_NEAR(t_sub_ror, 455, 25);
    // Everything single-cycle at 2 GHz.
    EXPECT_LE(t_sub_ror, 500u);
}

TEST(TimingModel, ArithScalesWithWidthLogicDoesNot)
{
    TimingModel tm;
    const Inst add = makeInst(Opcode::ADD);
    const Inst andi = makeInst(Opcode::AND);
    EXPECT_LT(tm.trueDelayPs(add, 8), tm.trueDelayPs(add, 64));
    EXPECT_EQ(tm.trueDelayPs(andi, 8), tm.trueDelayPs(andi, 64));
}

TEST(TimingModel, ShiftedOperandAddsShifterStage)
{
    TimingModel tm;
    const Inst plain = makeInst(Opcode::ADD);
    const Inst shifted = makeInst(Opcode::ADD, ShiftKind::Ror);
    EXPECT_GT(tm.trueDelayPs(shifted, 64), tm.trueDelayPs(plain, 64));
}

TEST(TimingModel, SimdTypeSlack)
{
    TimingModel tm;
    // Narrower element types -> shorter lane carry chains.
    EXPECT_LT(tm.simdDelayPs(Opcode::VADD, VecType::I8),
              tm.simdDelayPs(Opcode::VADD, VecType::I32));
    EXPECT_LT(tm.simdDelayPs(Opcode::VADD, VecType::I32),
              tm.simdDelayPs(Opcode::VADD, VecType::I64));
    // Bitwise SIMD is type-independent.
    EXPECT_EQ(tm.simdDelayPs(Opcode::VAND, VecType::I8),
              tm.simdDelayPs(Opcode::VAND, VecType::I64));
}

TEST(TimingModel, SlackEligibility)
{
    EXPECT_TRUE(TimingModel::isSlackEligible(Opcode::ADD));
    EXPECT_TRUE(TimingModel::isSlackEligible(Opcode::LSR));
    EXPECT_TRUE(TimingModel::isSlackEligible(Opcode::BEQZ));
    EXPECT_TRUE(TimingModel::isSlackEligible(Opcode::VADD));
    EXPECT_TRUE(TimingModel::isSlackEligible(Opcode::VMLA));
    EXPECT_FALSE(TimingModel::isSlackEligible(Opcode::VREDSUM));
    EXPECT_FALSE(TimingModel::isSlackEligible(Opcode::MUL));
    EXPECT_FALSE(TimingModel::isSlackEligible(Opcode::FADD));
    EXPECT_FALSE(TimingModel::isSlackEligible(Opcode::LDR));
}

TEST(TimingModel, TrueSlackComplementsDelay)
{
    TimingModel tm;
    const Inst andi = makeInst(Opcode::AND);
    EXPECT_EQ(tm.trueSlackPs(andi, 64),
              tm.clockPeriodPs() - tm.trueDelayPs(andi, 64));
}

TEST(TimingModel, PvtDerateSpeedsEverything)
{
    TimingConfig cfg;
    cfg.pvt_derate = 0.9;
    TimingModel nominal(cfg);
    TimingModel worst;
    const Inst add = makeInst(Opcode::ADD);
    EXPECT_LT(nominal.trueDelayPs(add, 64), worst.trueDelayPs(add, 64));
    TimingConfig bad;
    bad.pvt_derate = 1.5;
    EXPECT_THROW(TimingModel{bad}, std::logic_error);
}

TEST(SubCycleClock, TickGeometry)
{
    SubCycleClock clk(3, 500);
    EXPECT_EQ(clk.ticksPerCycle(), 8u);
    EXPECT_EQ(clk.cycleStart(3), 24u);
    EXPECT_EQ(clk.cycleOf(24), 3u);
    EXPECT_EQ(clk.cycleOf(23), 2u);
    EXPECT_EQ(clk.ciOf(27), 3u);
}

TEST(SubCycleClock, DelayQuantizesUpward)
{
    SubCycleClock clk(3, 500); // 62.5 ps per tick
    EXPECT_EQ(clk.delayTicks(1), 1u);    // floor would be 0
    EXPECT_EQ(clk.delayTicks(62), 1u);
    EXPECT_EQ(clk.delayTicks(63), 2u);
    EXPECT_EQ(clk.delayTicks(125), 2u);
    EXPECT_EQ(clk.delayTicks(126), 3u);
    EXPECT_EQ(clk.delayTicks(500), 8u);
    EXPECT_EQ(clk.delayTicks(9999), 8u); // clamped to one cycle
}

TEST(SubCycleClock, BoundaryCrossing)
{
    SubCycleClock clk(3, 500);
    EXPECT_FALSE(clk.crossesBoundary(8, 16));  // exactly one cycle
    EXPECT_TRUE(clk.crossesBoundary(12, 17));  // spills into next
    EXPECT_FALSE(clk.crossesBoundary(12, 16)); // ends on the edge
    EXPECT_FALSE(clk.crossesBoundary(8, 9));
}

TEST(SubCycleClock, CeilToBoundary)
{
    SubCycleClock clk(3, 500);
    EXPECT_EQ(clk.ceilToBoundary(16), 16u);
    EXPECT_EQ(clk.ceilToBoundary(17), 24u);
    EXPECT_EQ(clk.ceilToBoundary(23), 24u);
}

TEST(SubCycleClock, PrecisionSweepGeometry)
{
    for (unsigned p = 1; p <= 8; ++p) {
        SubCycleClock clk(p, 500);
        EXPECT_EQ(clk.ticksPerCycle(), Tick{1} << p);
        // A full-cycle delay is always exactly one cycle of ticks.
        EXPECT_EQ(clk.delayTicks(500), clk.ticksPerCycle());
    }
    EXPECT_THROW(SubCycleClock(0, 500), std::logic_error);
    EXPECT_THROW(SubCycleClock(9, 500), std::logic_error);
}

} // namespace
} // namespace redsoc

/**
 * @file
 * Workload correctness: every µISA kernel's architectural result is
 * checked against a native C++ reference implementation over the
 * same input data (read back out of the prepared memory image).
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "func/interpreter.h"
#include "workloads/mibench.h"
#include "workloads/ml_kernels.h"
#include "workloads/registry.h"
#include "workloads/speclike.h"

namespace redsoc {
namespace {

struct RunOutcome
{
    Trace trace;
    MemoryImage memory;
};

RunOutcome
runPrepared(PreparedProgram prepared)
{
    Interpreter interp(prepared.program, prepared.memory);
    Trace trace = interp.run(3'000'000);
    EXPECT_TRUE(interp.halted())
        << prepared.program->name() << " did not halt";
    return RunOutcome{std::move(trace), std::move(prepared.memory)};
}

TEST(Workloads, RegistryIsComplete)
{
    EXPECT_EQ(allWorkloads().size(), 15u);
    EXPECT_EQ(workloadNames(Suite::Spec).size(), 5u);
    EXPECT_EQ(workloadNames(Suite::MiBench).size(), 5u);
    EXPECT_EQ(workloadNames(Suite::Ml).size(), 5u);
    EXPECT_THROW(workloadByName("nope"), std::logic_error);
    EXPECT_EQ(workloadByName("crc").suite, Suite::MiBench);
}

TEST(Workloads, BitcntMatchesPopcount)
{
    auto out = runPrepared(mibench::buildBitcnt());
    u64 expected = 0;
    for (unsigned i = 0; i < mibench::kBitcntWords; ++i)
        expected += __builtin_popcountll(
            out.memory.peek64(mibench::kBitcntSrc + 8ull * i));
    for (unsigned i = 0; i < mibench::kBitcntWords / 8; ++i)
        expected += __builtin_popcountll(
            out.memory.peek64(mibench::kBitcntSrc + 8ull * i));
    EXPECT_EQ(out.memory.peek64(mibench::kResultAddr), expected);
}

TEST(Workloads, CrcMatchesReference)
{
    auto out = runPrepared(mibench::buildCrc());
    u32 crc = 0xFFFFFFFF;
    for (unsigned i = 0; i < mibench::kCrcLen; ++i) {
        crc ^= out.memory.peek8(mibench::kCrcSrc + i);
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1)));
    }
    crc ^= 0xFFFFFFFF;
    EXPECT_EQ(out.memory.peek32(mibench::kResultAddr), crc);
}

TEST(Workloads, StrsearchMatchesBmhReference)
{
    auto out = runPrepared(mibench::buildStrsearch());
    // Mirror the Boyer-Moore-Horspool loop exactly.
    constexpr unsigned m = mibench::kStrPatternLen;
    std::vector<u8> text(mibench::kStrTextLen);
    for (unsigned i = 0; i < text.size(); ++i)
        text[i] = out.memory.peek8(mibench::kStrText + i);
    std::vector<u8> pat(m);
    for (unsigned i = 0; i < m; ++i)
        pat[i] = out.memory.peek8(mibench::kStrPattern + i);

    unsigned skip[256];
    for (unsigned &s : skip)
        s = m;
    for (unsigned i = 0; i + 1 < m; ++i)
        skip[pat[i]] = m - 1 - i;

    u64 count = 0;
    for (int sweep = 0; sweep < 3; ++sweep) {
        s64 pos = 0;
        const s64 limit = static_cast<s64>(text.size()) - m;
        while (pos <= limit) {
            const u8 c = text[pos + m - 1];
            if (c == pat[m - 1] &&
                std::memcmp(&text[pos], pat.data(), m) == 0)
                ++count;
            pos += skip[c];
        }
    }
    EXPECT_EQ(out.memory.peek64(mibench::kResultAddr), count);
    EXPECT_GT(count, 0u); // the needle really was planted
}

TEST(Workloads, GsmMatchesFixedPointFir)
{
    auto out = runPrepared(mibench::buildGsm());
    const s64 *coef = mibench::gsmCoefficients();
    u64 expected_sum = 0;
    for (unsigned i = 0;
         i < mibench::kGsmSampleCount - mibench::kGsmOrder; ++i) {
        u64 acc = 0;
        for (unsigned k = 0; k < mibench::kGsmOrder; ++k) {
            const s64 sample = static_cast<s16>(out.memory.peek32(
                mibench::kGsmSamples + 2ull * (i + k)) & 0xFFFF);
            const s64 prod =
                (sample * coef[k]) >> 15; // arithmetic shift
            acc += static_cast<u64>(prod);
        }
        const u32 stored =
            out.memory.peek32(mibench::kGsmOut + 4ull * i);
        EXPECT_EQ(stored, static_cast<u32>(acc)) << "output " << i;
        expected_sum += acc;
    }
    EXPECT_EQ(out.memory.peek64(mibench::kResultAddr), expected_sum);
}

TEST(Workloads, CornersMatchesSusanReference)
{
    auto out = runPrepared(mibench::buildCorners());
    constexpr unsigned W = mibench::kCornersWidth;
    constexpr unsigned H = mibench::kCornersHeight;
    u64 corners = 0;
    for (unsigned y = 1; y + 1 < H; ++y) {
        for (unsigned xx = 1; xx + 1 < W; ++xx) {
            const int c = out.memory.peek8(
                mibench::kCornersImage + u64{y} * W + xx);
            unsigned usan = 0;
            const int offs[8][2] = {{-1, -1}, {-1, 0}, {-1, 1},
                                    {0, -1},  {0, 1},  {1, -1},
                                    {1, 0},   {1, 1}};
            for (const auto &o : offs) {
                const int nb = out.memory.peek8(
                    mibench::kCornersImage + u64{y + o[0]} * W + xx +
                    o[1]);
                if (std::abs(nb - c) <
                    static_cast<int>(mibench::kCornersThreshold))
                    ++usan;
            }
            if (usan < mibench::kCornersUsanLimit)
                ++corners;
        }
    }
    EXPECT_EQ(out.memory.peek64(mibench::kResultAddr), corners);
}

TEST(Workloads, XalancMatchesTreeWalk)
{
    auto out = runPrepared(speclike::buildXalanc());
    const Addr root = out.memory.peek64(speclike::kXalRootSlot);
    u64 sum = 0;
    u64 hits = 0;
    for (unsigned k = 0; k < speclike::kXalLookups; ++k) {
        const u64 key =
            out.memory.peek64(speclike::kXalKeys + 8ull * k);
        Addr node = root;
        while (node != 0) {
            const u64 nkey = out.memory.peek64(node);
            if (nkey == key) {
                sum += out.memory.peek64(node + 24);
                ++hits;
                break;
            }
            node = out.memory.peek64(
                node + (static_cast<s64>(key) < static_cast<s64>(nkey)
                            ? 8
                            : 16));
        }
    }
    EXPECT_EQ(out.memory.peek64(speclike::kResultAddr), sum);
    EXPECT_GT(hits, speclike::kXalLookups / 4); // planted keys hit
}

TEST(Workloads, Bzip2MatchesMtfReference)
{
    auto out = runPrepared(speclike::buildBzip2());
    // Re-derive the input: the source buffer is untouched by the run.
    std::vector<u8> table(256);
    for (unsigned i = 0; i < 256; ++i)
        table[i] = static_cast<u8>(i);
    u64 sum = 0;
    for (unsigned i = 0; i < speclike::kBzLen; ++i) {
        const u8 c = out.memory.peek8(speclike::kBzSrc + i);
        unsigned j = 0;
        while (table[j] != c)
            ++j;
        sum += j;
        EXPECT_EQ(out.memory.peek8(speclike::kBzOut + i), j)
            << "output byte " << i;
        for (unsigned t = j; t > 0; --t)
            table[t] = table[t - 1];
        table[0] = c;
    }
    EXPECT_EQ(out.memory.peek64(speclike::kResultAddr), sum);
}

TEST(Workloads, OmnetppMatchesHeapSimulation)
{
    auto prepared = speclike::buildOmnetpp();
    // Capture the initial heap before the run clobbers it.
    std::vector<u64> heap(speclike::kOmInitialEvents);
    for (unsigned i = 0; i < heap.size(); ++i)
        heap[i] = prepared.memory.peek64(speclike::kOmHeap + 8ull * i);

    auto out = runPrepared(std::move(prepared));

    u64 seed = speclike::kOmSeed;
    u64 chk = 0;
    u64 size = heap.size();
    heap.resize(heap.size() + speclike::kOmEventCount + 2);
    for (u64 events = speclike::kOmEventCount; events > 0; --events) {
        const u64 root = heap[0];
        chk ^= root;
        const u64 time = root >> 16;
        --size;
        u64 cur = heap[size];
        heap[0] = cur;
        u64 idx = 0;
        for (;;) {
            u64 child = 2 * idx + 1;
            if (child >= size)
                break;
            u64 cval = heap[child];
            if (child + 1 < size &&
                static_cast<s64>(heap[child + 1]) <
                    static_cast<s64>(cval)) {
                ++child;
                cval = heap[child];
            }
            if (static_cast<s64>(cur) <= static_cast<s64>(cval))
                break;
            heap[idx] = cval;
            heap[child] = cur;
            idx = child;
        }
        seed = seed * speclike::kOmLcgMult + speclike::kOmLcgInc;
        const u64 delay = (seed >> 33) & 0xFFFF;
        u64 newkey = ((time + delay) << 16) | (events & 0xFF);
        heap[size] = newkey;
        idx = size;
        ++size;
        while (idx != 0) {
            const u64 parent = (idx - 1) >> 1;
            if (static_cast<s64>(heap[parent]) <=
                static_cast<s64>(newkey))
                break;
            heap[idx] = heap[parent];
            heap[parent] = newkey;
            idx = parent;
        }
    }
    EXPECT_EQ(out.memory.peek64(speclike::kResultAddr), chk);
}

TEST(Workloads, GromacsMatchesDoubleForces)
{
    auto prepared = speclike::buildGromacs();
    // Snapshot inputs.
    std::vector<double> pos(3 * speclike::kGroParticles);
    for (unsigned i = 0; i < pos.size(); ++i)
        pos[i] = prepared.memory.peekF64(speclike::kGroPos + 8ull * i);
    std::vector<std::pair<u32, u32>> pairs(speclike::kGroPairCount);
    for (unsigned p = 0; p < pairs.size(); ++p) {
        pairs[p] = {prepared.memory.peek32(speclike::kGroPairs + 8ull * p),
                    prepared.memory.peek32(speclike::kGroPairs +
                                           8ull * p + 4)};
    }

    auto out = runPrepared(std::move(prepared));

    std::vector<double> force(3 * speclike::kGroParticles, 0.0);
    for (const auto &[i, j] : pairs) {
        const double dx = pos[3 * i] - pos[3 * j];
        const double dy = pos[3 * i + 1] - pos[3 * j + 1];
        const double dz = pos[3 * i + 2] - pos[3 * j + 2];
        const double r2 = dx * dx + dy * dy + dz * dz;
        const double f = r2 * speclike::kGroC1 + speclike::kGroC2;
        force[3 * i] += f * dx;
        force[3 * i + 1] += f * dy;
        force[3 * i + 2] += f * dz;
    }
    for (unsigned i = 0; i < force.size(); ++i) {
        EXPECT_DOUBLE_EQ(
            out.memory.peekF64(speclike::kGroForce + 8ull * i),
            force[i])
            << "component " << i;
    }
}

TEST(Workloads, SoplexMatchesSparseMatvec)
{
    auto out = runPrepared(speclike::buildSoplex());
    for (unsigned r = 0; r < speclike::kSoRows; ++r) {
        const u32 s = out.memory.peek32(speclike::kSoRowPtr + 4ull * r);
        const u32 e =
            out.memory.peek32(speclike::kSoRowPtr + 4ull * (r + 1));
        double acc = 0.0;
        for (u32 k = s; k < e; ++k) {
            const u32 col =
                out.memory.peek32(speclike::kSoColIdx + 4ull * k);
            acc += out.memory.peekF64(speclike::kSoValues + 8ull * k) *
                   out.memory.peekF64(speclike::kSoX + 8ull * col);
        }
        EXPECT_DOUBLE_EQ(out.memory.peekF64(speclike::kSoY + 8ull * r),
                         acc)
            << "row " << r;
    }
}

TEST(Workloads, ConvMatches3x3Gaussian)
{
    auto out = runPrepared(ml::buildConv());
    constexpr unsigned W = ml::kConvWidth;
    constexpr unsigned H = ml::kConvHeight;
    const int kernel[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};
    // Columns covered by the vector blocks: 1 .. 8*nblocks.
    constexpr unsigned covered = ((W - 2 - 7) / 8 + 1) * 8;
    for (unsigned y = 1; y + 1 < H; ++y) {
        for (unsigned c = 1; c < 1 + covered; ++c) {
            int acc = 0;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    acc += kernel[dy + 1][dx + 1] *
                           static_cast<int>(out.memory.peek32(
                               ml::kConvIn +
                               2ull * ((y + dy) * W + c + dx)) &
                               0xFFFF);
            const u16 expected = static_cast<u16>(acc >> 4);
            const u16 got = static_cast<u16>(
                out.memory.peek32(ml::kConvOut + 2ull * (y * W + c)) &
                0xFFFF);
            ASSERT_EQ(got, expected) << "pixel " << y << "," << c;
        }
    }
}

TEST(Workloads, ActIsExactlyRelu)
{
    auto out = runPrepared(ml::buildAct());
    for (unsigned i = 0; i < ml::kActCount; ++i) {
        const s16 in = static_cast<s16>(
            out.memory.peek32(ml::kActIn + 2ull * i) & 0xFFFF);
        const s16 got = static_cast<s16>(
            out.memory.peek32(ml::kActOut + 2ull * i) & 0xFFFF);
        ASSERT_EQ(got, in > 0 ? in : 0) << "element " << i;
    }
}

TEST(Workloads, PoolingMatchesTwoStageReference)
{
    for (bool average : {false, true}) {
        auto out = runPrepared(average ? ml::buildPool1()
                                       : ml::buildPool0());
        constexpr unsigned W = ml::kPoolWidth;
        constexpr unsigned H = ml::kPoolHeight;
        auto px = [&](unsigned y, unsigned c) {
            return static_cast<u16>(
                out.memory.peek32(ml::kPoolIn + 2ull * (y * W + c)) &
                0xFFFF);
        };
        for (unsigned y = 0; y < H / 2; ++y) {
            for (unsigned c = 0; c < W / 2; ++c) {
                u16 v0, v1;
                if (average) {
                    v0 = static_cast<u16>(
                        (px(2 * y, 2 * c) + px(2 * y + 1, 2 * c)) / 2);
                    v1 = static_cast<u16>((px(2 * y, 2 * c + 1) +
                                           px(2 * y + 1, 2 * c + 1)) /
                                          2);
                } else {
                    v0 = std::max(px(2 * y, 2 * c),
                                  px(2 * y + 1, 2 * c));
                    v1 = std::max(px(2 * y, 2 * c + 1),
                                  px(2 * y + 1, 2 * c + 1));
                }
                const u16 expected = average
                                         ? static_cast<u16>((v0 + v1) / 2)
                                         : std::max(v0, v1);
                const u16 got = static_cast<u16>(
                    out.memory.peek32(ml::kPoolOut +
                                      2ull * (y * (W / 2) + c)) &
                    0xFFFF);
                ASSERT_EQ(got, expected)
                    << (average ? "avg " : "max ") << y << "," << c;
            }
        }
    }
}

TEST(Workloads, SoftmaxMatchesFixedPointReference)
{
    auto out = runPrepared(ml::buildSoftmax());
    std::vector<u32> lut(16);
    for (unsigned r = 0; r < 16; ++r)
        lut[r] = out.memory.peek32(ml::kSoftLut + 4ull * r);

    for (unsigned batch = 0; batch < ml::kSoftBatches; ++batch) {
        const Addr base = ml::kSoftIn + 2ull * ml::kSoftLen * batch;
        s64 mx = -32768;
        std::vector<s64> logits(ml::kSoftLen);
        for (unsigned i = 0; i < ml::kSoftLen; ++i) {
            logits[i] = static_cast<s16>(
                out.memory.peek32(base + 2ull * i) & 0xFFFF);
            mx = std::max(mx, logits[i]);
        }
        u64 sum = 0;
        std::vector<u64> exps(ml::kSoftLen);
        for (unsigned i = 0; i < ml::kSoftLen; ++i) {
            const u64 diff = static_cast<u16>(mx - logits[i]);
            u64 q = diff >> 4;
            if (q > 63)
                q = 63;
            // The shift must happen at 64-bit width like the µISA LSR
            // (a u32 shift by >= 32 would be undefined).
            exps[i] = static_cast<u64>(lut[diff & 15]) >> q;
            sum += exps[i];
        }
        const u64 recip = (u64{1} << 31) / sum;
        u64 prob_sum = 0;
        for (unsigned i = 0; i < ml::kSoftLen; ++i) {
            const u16 expected =
                static_cast<u16>((exps[i] * recip) >> 16);
            const u16 got = static_cast<u16>(
                out.memory.peek32(ml::kSoftOut +
                                  2ull * (batch * ml::kSoftLen + i)) &
                0xFFFF);
            ASSERT_EQ(got, expected)
                << "batch " << batch << " elem " << i;
            prob_sum += got;
        }
        // Q15 probabilities sum to ~2^15 (truncation loses a little).
        EXPECT_GT(prob_sum, 30000u);
        EXPECT_LE(prob_sum, 33000u);
    }
}

TEST(Workloads, TracesAreReasonablySized)
{
    // Keep the experiment matrix tractable: every workload's dynamic
    // length sits in a band the benches were budgeted for.
    for (const Workload &w : allWorkloads()) {
        const Trace trace = traceWorkload(w.name);
        EXPECT_GT(trace.size(), 20'000u) << w.name;
        EXPECT_LT(trace.size(), 400'000u) << w.name;
    }
}

} // namespace
} // namespace redsoc

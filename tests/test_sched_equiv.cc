/**
 * @file
 * Scheduler-kernel differential suite: the event-driven kernel
 * (SchedKernel::Event) must be bit-identical to the legacy full-scan
 * kernel (SchedKernel::Scan) on every statistic and on the committed
 * schedule checksum, across every mode x ablation combination.
 *
 * Three layers of evidence:
 *  1. real-workload differentials over the full config grid,
 *  2. a randomized-trace property test (the scan kernel acts as the
 *     brute-force oracle for the event kernel's ready sets),
 *  3. targeted regressions for the subtle re-arm paths: last-arrival
 *     mispredict replay (retry_cycle re-arms) and loads parked behind
 *     unresolved older stores.
 *
 * Plus unit tests for the two new structures the event kernel leans
 * on: ReadySet and FuPool::freeSpan.
 */

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "helpers.h"
#include "sched_grid.h"

namespace redsoc {
namespace {

using test::differentialConfigs;
using test::makeTrace;
using test::randomTrace;
using test::runCore;

// ---------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------

/** Compare every deterministic CoreStats field (sim_seconds is host
 *  wall clock and intentionally excluded). */
void
expectStatsEqual(const CoreStats &scan, const CoreStats &event,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(scan.cycles, event.cycles);
    EXPECT_EQ(scan.committed, event.committed);
    EXPECT_EQ(scan.fu_stall_cycles, event.fu_stall_cycles);
    EXPECT_EQ(scan.recycled_ops, event.recycled_ops);
    EXPECT_EQ(scan.two_cycle_holds, event.two_cycle_holds);
    EXPECT_EQ(scan.slack_recycled_ticks, event.slack_recycled_ticks);
    EXPECT_EQ(scan.egpw_requests, event.egpw_requests);
    EXPECT_EQ(scan.egpw_grants, event.egpw_grants);
    EXPECT_EQ(scan.egpw_wasted, event.egpw_wasted);
    EXPECT_EQ(scan.fused_ops, event.fused_ops);
    EXPECT_EQ(scan.la_predictions, event.la_predictions);
    EXPECT_EQ(scan.la_mispredictions, event.la_mispredictions);
    EXPECT_EQ(scan.width_predictions, event.width_predictions);
    EXPECT_EQ(scan.width_aggressive, event.width_aggressive);
    EXPECT_EQ(scan.width_conservative, event.width_conservative);
    EXPECT_EQ(scan.branch_lookups, event.branch_lookups);
    EXPECT_EQ(scan.branch_mispredicts, event.branch_mispredicts);
    EXPECT_EQ(scan.loads, event.loads);
    EXPECT_EQ(scan.stores, event.stores);
    EXPECT_EQ(scan.l1_load_misses, event.l1_load_misses);
    EXPECT_EQ(scan.store_forwards, event.store_forwards);
    EXPECT_EQ(scan.threshold_min, event.threshold_min);
    EXPECT_EQ(scan.threshold_max, event.threshold_max);
    EXPECT_EQ(scan.threshold_final, event.threshold_final);
    EXPECT_EQ(scan.commit_checksum, event.commit_checksum);
    EXPECT_DOUBLE_EQ(scan.expected_chain_length,
                     event.expected_chain_length);

    const Histogram &hs = scan.chain_lengths;
    const Histogram &he = event.chain_lengths;
    EXPECT_EQ(hs.maxSample(), he.maxSample());
    EXPECT_EQ(hs.count(), he.count());
    EXPECT_EQ(hs.total(), he.total());
    EXPECT_EQ(hs.sumSquares(), he.sumSquares());
    EXPECT_EQ(hs.rawBuckets(), he.rawBuckets());
}

CoreStats
runKernel(const Trace &trace, CoreConfig cfg, SchedKernel kernel)
{
    cfg.sched_kernel = kernel;
    return runCore(trace, std::move(cfg));
}

/** Run both kernels on the same trace and assert full agreement.
 *  Returns the scan-kernel stats for additional assertions. */
CoreStats
expectKernelsAgree(const Trace &trace, const CoreConfig &cfg,
                   const std::string &what)
{
    CoreStats scan = runKernel(trace, cfg, SchedKernel::Scan);
    CoreStats event = runKernel(trace, cfg, SchedKernel::Event);
    expectStatsEqual(scan, event, what);
    return scan;
}

// The acceptance grid itself (differentialConfigs) and the random
// trace generator live in sched_grid.h, shared with test_critpath.cc.

// ---------------------------------------------------------------------
// Layer 1: real workloads x full config grid
// ---------------------------------------------------------------------

class WorkloadDifferential : public ::testing::TestWithParam<std::string>
{
  protected:
    static SimDriver &sharedDriver()
    {
        static SimDriver driver;
        return driver;
    }
};

TEST_P(WorkloadDifferential, KernelsBitIdentical)
{
    const std::string workload = GetParam();
    const Trace &trace = sharedDriver().trace(workload);
    for (const auto &[tag, cfg] : differentialConfigs("big"))
        expectKernelsAgree(trace, cfg, workload + "/" + tag);
}

TEST_P(WorkloadDifferential, SmallCoreKernelsBitIdentical)
{
    // The small core has tighter structures (more stalls, more RS
    // pressure), hitting the full/park/retry paths harder.
    const std::string workload = GetParam();
    const Trace &trace = sharedDriver().trace(workload);
    for (const std::string tag :
         {"redsoc", "redsoc_dynamic", "mos", "baseline"}) {
        for (const auto &[name, cfg] : differentialConfigs("small")) {
            if (name == tag)
                expectKernelsAgree(trace, cfg,
                                   workload + "/small/" + tag);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadDifferential,
                         ::testing::Values("crc", "gsm", "act", "bzip2",
                                           "conv", "xalanc"),
                         [](const auto &pinfo) { return pinfo.param; });

// ---------------------------------------------------------------------
// Layer 2: randomized-trace property test (scan kernel = oracle)
// ---------------------------------------------------------------------

class RandomTraceDifferential
    : public ::testing::TestWithParam<u64>
{
};

TEST_P(RandomTraceDifferential, EventMatchesScanOracle)
{
    const u64 seed = GetParam();
    const Trace trace = randomTrace(seed, 600);
    for (const std::string core : {"big", "small"}) {
        for (const auto &[tag, cfg] : differentialConfigs(core)) {
            expectKernelsAgree(trace, cfg,
                               "seed=" + std::to_string(seed) + "/" +
                                   core + "/" + tag);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 0xdeadbeefu,
                                           0xfeedfaceu));

// ---------------------------------------------------------------------
// Layer 3: targeted regressions
// ---------------------------------------------------------------------

/**
 * Last-arrival replay: the Operational RS predicts which parent
 * arrives last; alternating which of two producers (fast ADD vs slow
 * MUL feeding the consumer's two operands) really arrives last forces
 * mispredicts, whose retry_cycle re-arm the event kernel must replay
 * at exactly the legacy cycle.
 */
TEST(SchedEquivRegression, LastArrivalReplayReArm)
{
    ProgramBuilder b("sched_equiv");
    b.movImm(x(1), 7);
    b.movImm(x(2), 9);
    b.movImm(x(5), 3);
    for (unsigned i = 0; i < 200; ++i) {
        if (i % 2 == 0) {
            b.mul(x(3), x(1), x(5));           // slow operand a
            b.alui(Opcode::ADD, x(4), x(2), 1); // fast operand b
        } else {
            b.alui(Opcode::ADD, x(3), x(1), 1); // fast operand a
            b.mul(x(4), x(2), x(5));           // slow operand b
        }
        b.alu(Opcode::EOR, x(1), x(3), x(4));  // 2-source consumer
        b.alu(Opcode::ADD, x(2), x(4), x(3));
    }
    b.halt();
    const Trace trace = makeTrace(b);

    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;
    cfg.rs_design = RsDesign::Operational;
    CoreStats scan = expectKernelsAgree(trace, cfg, "la-replay");
    // The construction must actually hit the replay path, otherwise
    // this regression guards nothing.
    EXPECT_GT(scan.la_mispredictions, 0u);
}

/**
 * Parked-load re-arm: a load blocked on an older store with a slow
 * address/data chain has no wake event of its own — it must be
 * re-evaluated when stores issue, and only then.
 */
TEST(SchedEquivRegression, ParkedLoadWokenByStoreIssue)
{
    ProgramBuilder b("sched_equiv");
    b.movImm(x(11), 0x2000);
    b.movImm(x(5), 3);
    b.movImm(x(1), 40);
    for (unsigned i = 0; i < 120; ++i) {
        b.mul(x(2), x(1), x(5)); // slow chain feeding store data
        b.mul(x(2), x(2), x(5));
        b.store(Opcode::STR, x(2), x(11), 8 * (i % 16));
        b.load(Opcode::LDR, x(3), x(11), 8 * (i % 16)); // same addr
        b.alui(Opcode::ADD, x(1), x(3), 1);
    }
    b.halt();
    const Trace trace = makeTrace(b);

    for (const std::string core : {"big", "small"}) {
        CoreConfig cfg = coreByName(core);
        cfg.mode = SchedMode::ReDSOC;
        CoreStats scan =
            expectKernelsAgree(trace, cfg, "parked-load/" + core);
        EXPECT_GT(scan.store_forwards, 0u);
    }
}

/** MOS fusion differential on a fusion-friendly kernel shape. */
TEST(SchedEquivRegression, MosFusionChains)
{
    ProgramBuilder b("sched_equiv");
    test::emitLogicChain(b, 400);
    b.halt();
    const Trace trace = makeTrace(b);

    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::MOS;
    CoreStats scan = expectKernelsAgree(trace, cfg, "mos-chains");
    EXPECT_GT(scan.fused_ops, 0u);
}

// ---------------------------------------------------------------------
// Structure unit tests: ReadySet and FuPool::freeSpan
// ---------------------------------------------------------------------

TEST(ReadySetTest, InsertEraseIdempotent)
{
    ReadySet rs;
    EXPECT_TRUE(rs.empty());
    rs.insert(5);
    rs.insert(5); // duplicate: no double count
    EXPECT_EQ(rs.size(), 1u);
    EXPECT_TRUE(rs.contains(5));
    rs.erase(5);
    rs.erase(5); // absent: no-op
    EXPECT_TRUE(rs.empty());
    EXPECT_FALSE(rs.contains(5));
    rs.erase(42); // never inserted
    EXPECT_TRUE(rs.empty());
}

TEST(ReadySetTest, GlobalAgeOrder)
{
    ReadySet rs;
    rs.insert(30);
    rs.insert(10);
    rs.insert(20);
    rs.insert(25);

    // A cursor sweep must see the candidates merged oldest-first.
    std::vector<SeqNum> order;
    SeqNum cur = 0;
    for (SeqNum seq; (seq = rs.nextAtOrAfter(cur)) != kNoSeq;
         cur = seq + 1)
        order.push_back(seq);
    EXPECT_EQ(order, (std::vector<SeqNum>{10, 20, 25, 30}));
}

TEST(ReadySetTest, NextAtOrAfterIsInclusive)
{
    ReadySet rs;
    rs.insert(7);
    EXPECT_EQ(rs.nextAtOrAfter(7), 7u);
    EXPECT_EQ(rs.nextAtOrAfter(8), kNoSeq);
}

TEST(ReadySetTest, PopMatchesNextPlusErase)
{
    ReadySet rs;
    for (SeqNum s : {3u, 64u, 65u, 200u})
        rs.insert(s);
    std::vector<SeqNum> popped;
    SeqNum cur = 0;
    for (SeqNum seq; (seq = rs.popAtOrAfter(cur)) != kNoSeq;
         cur = seq + 1)
        popped.push_back(seq);
    EXPECT_EQ(popped, (std::vector<SeqNum>{3, 64, 65, 200}));
    EXPECT_TRUE(rs.empty());
    EXPECT_EQ(rs.popAtOrAfter(0), kNoSeq);
}

TEST(ReadySetTest, RingRecyclesAcrossWindows)
{
    // The drain discipline: the set empties every cycle, so far-apart
    // seq windows reuse ring slots. Interleave a full drain between
    // distant batches and verify age order within each.
    ReadySet rs;
    rs.configure(64);
    for (unsigned round = 0; round < 8; ++round) {
        const SeqNum base = SeqNum{round} * 100000;
        for (SeqNum off : {63u, 0u, 31u, 17u})
            rs.insert(base + off);
        EXPECT_EQ(rs.size(), 4u);
        std::vector<SeqNum> order;
        SeqNum cur = 0;
        for (SeqNum seq; (seq = rs.popAtOrAfter(cur)) != kNoSeq;
             cur = seq + 1)
            order.push_back(seq);
        EXPECT_EQ(order, (std::vector<SeqNum>{base + 0, base + 17,
                                              base + 31, base + 63}));
        EXPECT_TRUE(rs.empty());
    }
}

TEST(ReadySetTest, GrowOnLiveCollision)
{
    // A deliberately undersized ring: live words that alias force a
    // grow, after which every candidate must still be present and in
    // age order.
    ReadySet rs;
    rs.configure(1); // handful of word slots
    std::vector<SeqNum> want;
    for (unsigned i = 0; i < 64; ++i) {
        const SeqNum seq = SeqNum{i} * 4096 + i; // distinct words
        rs.insert(seq);
        want.push_back(seq);
    }
    EXPECT_EQ(rs.size(), want.size());
    for (SeqNum seq : want)
        EXPECT_TRUE(rs.contains(seq));
    std::vector<SeqNum> order;
    SeqNum cur = 0;
    for (SeqNum seq; (seq = rs.nextAtOrAfter(cur)) != kNoSeq;
         cur = seq + 1)
        order.push_back(seq);
    EXPECT_EQ(order, want);
}

TEST(ReadySetTest, ClearResets)
{
    ReadySet rs;
    for (SeqNum s = 0; s < 8; ++s)
        rs.insert(s);
    EXPECT_EQ(rs.size(), 8u);
    rs.clear();
    EXPECT_TRUE(rs.empty());
    EXPECT_EQ(rs.nextAtOrAfter(0), kNoSeq);
}

TEST(FuPoolTest, FreeSpanMatchesFreeUnitsLoop)
{
    CoreConfig cfg = coreByName("small");
    FuPool pool(cfg);
    Rng rng(99);

    // Random bookings, then cross-check freeSpan against the
    // reference freeUnits loop on random probes.
    for (unsigned i = 0; i < 200; ++i) {
        const auto kind = static_cast<FuPoolKind>(rng.below(4));
        const Cycle c = 100 + rng.below(40);
        if (pool.freeUnits(kind, c) > 0 && pool.freeUnits(kind, c + 1) > 0)
            pool.book(kind, c,
                      static_cast<unsigned>(1 + rng.below(2)));
    }
    for (unsigned i = 0; i < 400; ++i) {
        const auto kind = static_cast<FuPoolKind>(rng.below(4));
        const Cycle c = 100 + rng.below(40);
        const unsigned span = static_cast<unsigned>(1 + rng.below(3));
        bool ref = true;
        for (unsigned k = 0; k < span; ++k)
            if (pool.freeUnits(kind, c + k) == 0)
                ref = false;
        EXPECT_EQ(pool.freeSpan(kind, c, span), ref)
            << "kind=" << static_cast<int>(kind) << " c=" << c
            << " span=" << span;
    }
}

TEST(FuPoolTest, FreeSpanZeroSpanAlwaysFree)
{
    CoreConfig cfg = coreByName("small");
    FuPool pool(cfg);
    for (unsigned u = 0; u < cfg.alu_units; ++u)
        pool.book(FuPoolKind::Alu, 5);
    EXPECT_FALSE(pool.freeSpan(FuPoolKind::Alu, 5, 1));
    EXPECT_TRUE(pool.freeSpan(FuPoolKind::Alu, 5, 0)); // MOS fusion span
}

} // namespace
} // namespace redsoc

/**
 * @file
 * The shared scheduler acceptance grid: the config matrix and the
 * randomized-trace generator used by both the kernel differential
 * suite (test_sched_equiv.cc) and the critical-path exactness suite
 * (test_critpath.cc). Keeping them in one header guarantees the
 * analytic engine is proven on exactly the grid the kernels are.
 */

#ifndef REDSOC_TESTS_SCHED_GRID_H
#define REDSOC_TESTS_SCHED_GRID_H

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "helpers.h"

namespace redsoc {
namespace test {

/** The acceptance grid: every scheduler mode plus the EGPW /
 *  skewed-select / RS-design / dynamic-threshold / timing-speculation
 *  ablations. The TS comparator is Baseline at a scaled clock period;
 *  the in-order-like substrate point is the small core with recycling
 *  ablated down to conventional wakeup. */
inline std::vector<std::pair<std::string, CoreConfig>>
differentialConfigs(const std::string &core_name)
{
    std::vector<std::pair<std::string, CoreConfig>> out;
    auto add = [&](const std::string &tag, SchedMode mode,
                   auto mutate) {
        CoreConfig cfg = coreByName(core_name);
        cfg.mode = mode;
        mutate(cfg);
        out.emplace_back(tag, std::move(cfg));
    };

    add("baseline", SchedMode::Baseline, [](CoreConfig &) {});
    add("mos", SchedMode::MOS, [](CoreConfig &) {});
    add("redsoc", SchedMode::ReDSOC, [](CoreConfig &) {});
    add("redsoc_no_egpw", SchedMode::ReDSOC,
        [](CoreConfig &c) { c.egpw = false; });
    add("redsoc_no_skew", SchedMode::ReDSOC,
        [](CoreConfig &c) { c.skewed_select = false; });
    add("redsoc_conventional_wakeup", SchedMode::ReDSOC,
        [](CoreConfig &c) {
            c.egpw = false;
            c.skewed_select = false;
        });
    add("redsoc_illustrative", SchedMode::ReDSOC,
        [](CoreConfig &c) { c.rs_design = RsDesign::Illustrative; });
    add("redsoc_dynamic", SchedMode::ReDSOC, [](CoreConfig &c) {
        c.dynamic_threshold = true;
        c.threshold_epoch = 500; // short epochs: exercise adaptation
    });
    add("ts_baseline", SchedMode::Baseline, [](CoreConfig &c) {
        // Timing-speculation comparator: Baseline with off-core
        // latencies rescaled to the overclocked period, exactly as
        // baselines/timing_speculation.cc runs it.
        c.memory.offcore_latency_scale = 525.0 / 394.0;
    });

    // Capacity boundaries: the kernels must agree exactly where a
    // structure fills, because those are the cycles where Phase-A
    // retention, FU-denial parking and wake re-arms diverge first.
    add("redsoc_rs_full", SchedMode::ReDSOC, [](CoreConfig &c) {
        c.rs_entries = 3; // RS fills within a few dispatch groups
        c.frontend_width = 5;
    });
    add("redsoc_ready_saturated", SchedMode::ReDSOC, [](CoreConfig &c) {
        c.rs_entries = 64; // big ready population, starved select
        c.frontend_width = 5;
        c.alu_units = 1;
        c.simd_units = 1;
        c.fp_units = 1;
        c.mem_ports = 1;
    });
    add("redsoc_lsq_floor", SchedMode::ReDSOC, [](CoreConfig &c) {
        c.lsq_entries = 2; // every memory op contends for the LSQ
    });
    return out;
}

/**
 * Random straight-line-ish program: dense ALU dependency webs (deep
 * and wide), multi-cycle producers (mul/div/fp), aliasing loads and
 * stores over a small memory window, and forward conditional
 * branches. Everything the wakeup machinery has to get right: multi
 * source ops, last-arrival swaps, store-to-load parking, speculative
 * flushes.
 */
inline Trace
randomTrace(u64 seed, unsigned n_ops)
{
    Rng rng(seed);
    ProgramBuilder b("sched_equiv");

    // x1..x8: live data web. x10: nonzero divisor. x11: memory base.
    for (unsigned r = 1; r <= 8; ++r)
        b.movImm(x(r), static_cast<s64>(rng.range(1, 255)));
    b.movImm(x(10), static_cast<s64>(rng.range(3, 17)));
    b.movImm(x(11), 0x1000);

    auto data_reg = [&] {
        return x(static_cast<unsigned>(1 + rng.below(8)));
    };
    const Opcode alu_ops[] = {Opcode::ADD, Opcode::SUB, Opcode::AND,
                              Opcode::ORR, Opcode::EOR};

    for (unsigned i = 0; i < n_ops; ++i) {
        const double roll = rng.uniform();
        if (roll < 0.55) {
            // Single-cycle ALU: the slack-eligible bread and butter.
            const Opcode op = alu_ops[rng.below(5)];
            if (rng.chance(0.5))
                b.alu(op, data_reg(), data_reg(), data_reg());
            else
                b.alui(op, data_reg(), data_reg(),
                       static_cast<s64>(rng.below(64)));
        } else if (roll < 0.70) {
            // Multi-cycle integer producers: late arrivals.
            if (rng.chance(0.75))
                b.mul(data_reg(), data_reg(), data_reg());
            else
                b.sdiv(data_reg(), data_reg(), x(10));
        } else if (roll < 0.82) {
            // Aliasing memory traffic over a 64-slot window: store
            // forwarding plus loads parked on unresolved stores.
            const s64 off = static_cast<s64>(rng.below(64)) * 8;
            if (rng.chance(0.5))
                b.store(Opcode::STR, data_reg(), x(11), off);
            else
                b.load(Opcode::LDR, data_reg(), x(11), off);
        } else if (roll < 0.90) {
            // FP pair: fp-pool pressure, non-eligible producers.
            b.fmovImm(x(9), 1.5 + rng.uniform());
            b.fop(rng.chance(0.5) ? Opcode::FADD : Opcode::FMUL, x(9),
                  x(9), x(9));
        } else {
            // Forward conditional branch over a tiny random block.
            ProgramBuilder::Label skip = b.newLabel();
            b.branch(rng.chance(0.5) ? Opcode::BNEZ : Opcode::BGTZ,
                     data_reg(), skip);
            const unsigned block =
                static_cast<unsigned>(1 + rng.below(3));
            for (unsigned k = 0; k < block; ++k)
                b.alui(Opcode::ADD, data_reg(), data_reg(),
                       static_cast<s64>(rng.below(16)));
            b.bind(skip);
        }
    }
    b.halt();
    return makeTrace(b);
}

} // namespace test
} // namespace redsoc

#endif // REDSOC_TESTS_SCHED_GRID_H

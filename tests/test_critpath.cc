/**
 * @file
 * Critical-path what-if engine suite (DESIGN.md section 13).
 *
 * Four layers of evidence:
 *  1. streaming-sink completeness: the dependence graph is identical
 *     whether the tracer ring wraps or not (the sink sees everything),
 *  2. a 10-seed randomized property suite: structural validity,
 *     constructive acyclicity, full reachability from the first
 *     dispatch, and base-model exactness node by node,
 *  3. a golden graph snapshot, byte-identical under both scheduler
 *     kernels,
 *  4. the acceptance grid: base-model re-timing reproduces the
 *     simulator's committed cycle count bit-exactly on every
 *     workload x config x kernel point of the shared scheduler grid.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "critpath/dep_graph_builder.h"
#include "critpath/retimer.h"
#include "helpers.h"
#include "sched_grid.h"
#include "trace/pipe_tracer.h"

namespace redsoc {
namespace {

using test::differentialConfigs;
using test::makeTrace;
using test::randomTrace;

struct TracedRun
{
    DepGraph graph;
    CoreStats stats;
    u64 events_seen = 0;
    u64 ring_dropped = 0;
};

/** Run @p trace on a cold core with a graph-building sink attached.
 *  @p ring_cap deliberately defaults small: the graph must not depend
 *  on the ring retaining anything. */
TracedRun
tracedRun(const Trace &trace, CoreConfig cfg,
          size_t ring_cap = size_t{1} << 12)
{
    PipeTracer tracer(ring_cap);
    DepGraphBuilder builder(trace, cfg);
    tracer.setSink(&builder);
    OooCore core(cfg);
    core.setTracer(&tracer);
    TracedRun r;
    r.stats = core.run(trace);
    r.events_seen = builder.eventsSeen();
    r.ring_dropped = tracer.droppedEvents();
    r.graph = builder.finalize();
    return r;
}

/** Every milestone node must be reachable from op 0's dispatch by
 *  following stored edges forward (the graph has no orphaned work). */
void
expectAllReachable(const DepGraph &g)
{
    ASSERT_GT(g.num_ops, 0u);
    std::vector<char> reach(size_t{g.num_ops} * kNumMilestones, 0);
    reach[nodeId(0, Milestone::D)] = 1;
    u64 unreachable = 0;
    for (const u32 node : g.topo) {
        if (reach[node])
            continue;
        const u32 i = nodeOp(node);
        const Milestone ms = nodeMilestone(node);
        bool ok = false;
        for (u32 e = g.edge_begin[i]; e < g.edge_begin[i + 1]; ++e) {
            const Edge &edge = g.edges[e];
            if (edgeDstMilestone(edge.kind) != ms)
                continue;
            ok = ok ||
                 reach[nodeId(edge.src, edgeSrcMilestone(edge.kind))];
        }
        reach[node] = ok ? 1 : 0;
        unreachable += ok ? 0 : 1;
    }
    EXPECT_EQ(unreachable, 0u)
        << "milestone nodes unreachable from op 0's dispatch";
}

/** Base-model exactness, the strong form: not just the final cycle
 *  count, every node's re-timed tick equals the observed tick. */
void
expectBaseExact(const DepGraph &g, const CoreStats &stats,
                const std::string &what)
{
    SCOPED_TRACE(what);
    Retimer retimer(g);
    const RetimeResult base = retimer.retime(WhatIfModel{});
    EXPECT_EQ(base.cycles, stats.cycles);
    EXPECT_EQ(base.ops, stats.committed);
    const std::vector<Tick> &t = retimer.nodeTimes();
    u64 mismatches = 0;
    for (u32 i = 0; i < g.num_ops && mismatches < 8; ++i) {
        for (u32 m = 0; m < kNumMilestones; ++m) {
            const auto ms = static_cast<Milestone>(m);
            if (t[nodeId(i, ms)] != g.obs(ms, i)) {
                ++mismatches;
                ADD_FAILURE()
                    << "op " << i << " " << milestoneName(ms)
                    << ": retimed " << t[nodeId(i, ms)]
                    << " != observed " << g.obs(ms, i);
            }
        }
    }
    EXPECT_EQ(mismatches, 0u);
}

// ---------------------------------------------------------------------
// 1. Streaming-sink completeness
// ---------------------------------------------------------------------

TEST(CritpathSink, GraphUnaffectedByRingWrap)
{
    const Trace trace = randomTrace(1, 600);
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;

    // A 256-entry ring wraps hundreds of times over ~600 ops...
    const TracedRun tiny = tracedRun(trace, cfg, 256);
    EXPECT_GT(tiny.ring_dropped, 0u) << "ring never wrapped: the "
                                        "completeness claim is untested";
    // ...while a generous ring never wraps.
    const TracedRun big = tracedRun(trace, cfg, size_t{1} << 20);
    EXPECT_EQ(big.ring_dropped, 0u);

    // The sink saw the identical, complete stream in both runs.
    EXPECT_EQ(tiny.events_seen, big.events_seen);
    EXPECT_EQ(tiny.events_seen, tiny.ring_dropped + 256);
    EXPECT_EQ(renderDepGraph(tiny.graph), renderDepGraph(big.graph));
}

// ---------------------------------------------------------------------
// 2. Randomized property suite
// ---------------------------------------------------------------------

class CritpathProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(CritpathProperty, ValidAcyclicReachableAndExact)
{
    const Trace trace = randomTrace(GetParam(), 600);
    for (const std::string core : {"big", "small"}) {
        for (const auto &[tag, cfg] : differentialConfigs(core)) {
            SCOPED_TRACE(core + "/" + tag);
            const TracedRun r = tracedRun(trace, cfg);
            ASSERT_EQ(r.stats.committed, trace.size());
            ASSERT_EQ(r.graph.num_ops, trace.size());
            // validate() covers CSR shape, stored-edge tick
            // monotonicity and the topo-order acyclicity proof.
            EXPECT_EQ(r.graph.validate(), std::string());
            expectAllReachable(r.graph);
            expectBaseExact(r.graph, r.stats, "base");
        }
    }
}

TEST_P(CritpathProperty, KernelsBuildIdenticalGraphs)
{
    const Trace trace = randomTrace(GetParam(), 600);
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;
    std::string rendered[2];
    int i = 0;
    for (const SchedKernel kernel :
         {SchedKernel::Scan, SchedKernel::Event}) {
        cfg.sched_kernel = kernel;
        rendered[i++] = renderDepGraph(tracedRun(trace, cfg).graph);
    }
    EXPECT_EQ(rendered[0], rendered[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CritpathProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 0xdeadbeefu,
                                           0xfeedfaceu));

// ---------------------------------------------------------------------
// 3. Golden graph snapshot
// ---------------------------------------------------------------------

/** Small fixed workload covering the interesting edge kinds: a logic
 *  chain (transparent passes + EGPW), an add chain, aliasing memory
 *  traffic and a conditional branch. */
Trace
goldenTrace()
{
    ProgramBuilder b("critpath_golden");
    test::emitLogicChain(b, 12);
    test::emitAddChain(b, 6, x(2));
    b.movImm(x(11), 0x1000);
    b.store(Opcode::STR, x(1), x(11), 0);
    b.load(Opcode::LDR, x(3), x(11), 0);
    b.alu(Opcode::ADD, x(2), x(2), x(3));
    ProgramBuilder::Label skip = b.newLabel();
    b.branch(Opcode::BNEZ, x(2), skip);
    b.alui(Opcode::ADD, x(1), x(1), 1);
    b.bind(skip);
    b.alu(Opcode::EOR, x(1), x(1), x(2));
    b.halt();
    return makeTrace(b);
}

TEST(CritpathGolden, SnapshotMatchesBothKernels)
{
    const Trace trace = goldenTrace();
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;

    std::string rendered[2];
    int i = 0;
    for (const SchedKernel kernel :
         {SchedKernel::Scan, SchedKernel::Event}) {
        cfg.sched_kernel = kernel;
        const TracedRun r = tracedRun(trace, cfg);
        // The golden workload must exercise the recycle machinery.
        EXPECT_GT(r.stats.recycled_ops, 0u);
        rendered[i++] = renderDepGraph(r.graph);
    }
    EXPECT_EQ(rendered[0], rendered[1])
        << "Scan and Event kernels built different graphs";

    const std::string golden_path =
        std::string(REDSOC_TEST_GOLDEN) + "/critpath_small.txt";
    const char *update = std::getenv("REDSOC_UPDATE_GOLDEN");
    if (update != nullptr && *update != '\0') {
        std::ofstream ofs(golden_path, std::ios::binary);
        ASSERT_TRUE(ofs) << "cannot write " << golden_path;
        ofs << rendered[0];
        GTEST_SKIP() << "golden updated: " << golden_path;
    }
    std::ifstream ifs(golden_path, std::ios::binary);
    ASSERT_TRUE(ifs) << "missing golden file " << golden_path
                     << " (regenerate with REDSOC_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << ifs.rdbuf();
    EXPECT_EQ(rendered[0], want.str())
        << "dependence-graph drift: the committed golden snapshot no "
           "longer matches (REDSOC_UPDATE_GOLDEN=1 if intentional)";
}

// ---------------------------------------------------------------------
// 4. Acceptance grid: base-model exactness on real workloads
// ---------------------------------------------------------------------

class CritpathGrid : public ::testing::TestWithParam<std::string>
{
  protected:
    static SimDriver &sharedDriver()
    {
        static SimDriver driver;
        return driver;
    }
};

TEST_P(CritpathGrid, BaseRetimeBitIdenticalToSimulator)
{
    const std::string workload = GetParam();
    const Trace &trace = sharedDriver().trace(workload);
    for (const std::string core : {"big", "small"}) {
        for (const auto &[tag, cfg] : differentialConfigs(core)) {
            for (const SchedKernel kernel :
                 {SchedKernel::Scan, SchedKernel::Event}) {
                CoreConfig point = cfg;
                point.sched_kernel = kernel;
                SCOPED_TRACE(
                    workload + "/" + core + "/" + tag +
                    (kernel == SchedKernel::Scan ? "/scan" : "/event"));
                const TracedRun r = tracedRun(trace, point);
                Retimer retimer(r.graph);
                const RetimeResult base = retimer.retime(WhatIfModel{});
                EXPECT_EQ(base.cycles, r.stats.cycles);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CritpathGrid,
                         ::testing::Values("crc", "gsm", "act", "bzip2",
                                           "conv", "xalanc"),
                         [](const auto &pinfo) { return pinfo.param; });

// ---------------------------------------------------------------------
// What-if model sanity (ordering relations, not exact values)
// ---------------------------------------------------------------------

TEST(CritpathWhatIf, ModelOrderingSane)
{
    const Trace trace = randomTrace(7, 800);
    CoreConfig cfg = coreByName("big");
    cfg.mode = SchedMode::ReDSOC;
    const TracedRun r = tracedRun(trace, cfg);
    Retimer retimer(r.graph);

    WhatIfModel base;
    const Cycle base_cycles = retimer.retime(base).cycles;
    EXPECT_EQ(base_cycles, r.stats.cycles);

    WhatIfModel ideal;
    ideal.name = "zero_latency_recycle";
    ideal.exact_replay = false;
    ideal.zero_latency_recycle = true;
    const Cycle ideal_cycles = retimer.retime(ideal).cycles;

    WhatIfModel none;
    none.name = "no_recycle";
    none.exact_replay = false;
    none.no_recycle = true;
    const Cycle none_cycles = retimer.retime(none).cycles;

    // Ideal recycling can only help; no recycling can only hurt.
    EXPECT_LE(ideal_cycles, none_cycles);

    // Coarser CI precision is monotonically worse (or equal).
    Cycle prev = 0;
    for (const unsigned bits : {4u, 3u, 2u, 1u}) {
        WhatIfModel m;
        m.name = "ci" + std::to_string(bits);
        m.exact_replay = false;
        m.ci_bits = bits;
        const Cycle c = retimer.retime(m).cycles;
        EXPECT_GE(c, prev) << "ci_bits=" << bits;
        prev = c;
    }

    // Fewer FUs can only lengthen the schedule relative to more.
    Cycle more_units = 0, fewer_units = 0;
    {
        WhatIfModel m;
        m.exact_replay = false;
        m.fu_scale = 2.0;
        more_units = retimer.retime(m).cycles;
        m.fu_scale = 0.5;
        fewer_units = retimer.retime(m).cycles;
    }
    EXPECT_LE(more_units, fewer_units);

    // The critical-path walk terminates and reports a real path.
    const RetimeResult res = retimer.retime(base);
    EXPECT_GT(res.path_len, 0u);
    u64 total = 0;
    for (const u64 n : res.path_kinds)
        total += n;
    EXPECT_EQ(total, res.path_len);
}

/** Every what-if knob combination the batched pass special-cases:
 *  CI precision ladder x EGPW honoring x FU scaling, plus the two
 *  bound models. Mirrors (and exceeds) the bench sweep's coverage. */
std::vector<WhatIfModel>
crossCheckModels()
{
    std::vector<WhatIfModel> models;
    for (unsigned bits : {1u, 2u, 3u, 4u}) {
        for (bool egpw : {true, false}) {
            for (double fu : {0.5, 1.0, 2.0, 4.0}) {
                WhatIfModel m;
                m.name = "ci" + std::to_string(bits) +
                         (egpw ? "" : "_noegpw") + "_fu" +
                         std::to_string(fu);
                m.exact_replay = false;
                m.ci_bits = bits;
                m.egpw = egpw;
                m.fu_scale = fu;
                models.push_back(m);
            }
        }
    }
    for (double fu : {0.5, 1.0, 2.0}) {
        WhatIfModel m;
        m.name = "ideal_fu" + std::to_string(fu);
        m.exact_replay = false;
        m.zero_latency_recycle = true;
        m.fu_scale = fu;
        models.push_back(m);
        m.name = "none_fu" + std::to_string(fu);
        m.zero_latency_recycle = false;
        m.no_recycle = true;
        models.push_back(m);
    }
    return models;
}

/** The batched sweep must be a pure optimization: retimeAll() and a
 *  loop of retime() calls are two independent implementations (the
 *  batched pass runs on a pruned, class-folded plan; retime() walks
 *  the raw edge array), so agreement here proves the plan's
 *  model-independent prunes are sound on real dependence graphs. */
TEST_P(CritpathProperty, BatchedRetimeMatchesPerModel)
{
    const Trace trace = randomTrace(GetParam(), 600);
    const std::vector<WhatIfModel> models = crossCheckModels();
    for (const std::string core : {"big", "small"}) {
        for (const auto &[tag, cfg] : differentialConfigs(core)) {
            SCOPED_TRACE(core + "/" + tag);
            const TracedRun r = tracedRun(trace, cfg);
            Retimer retimer(r.graph);
            const std::vector<RetimeResult> batched =
                retimer.retimeAll(models);
            ASSERT_EQ(batched.size(), models.size());
            for (size_t i = 0; i < models.size(); ++i) {
                const RetimeResult one = retimer.retime(models[i]);
                EXPECT_EQ(batched[i].cycles, one.cycles)
                    << "model " << models[i].name;
                EXPECT_EQ(batched[i].ops, one.ops);
            }
        }
    }
}

} // namespace
} // namespace redsoc

/**
 * @file
 * ReDSOC mechanism tests: transparent chain acceleration, eager
 * grandparent wakeup, the slack threshold, 2-cycle FU holds, skewed
 * selection at the core level, width-misprediction replay, and the
 * Illustrative vs Operational RSE designs.
 */

#include <gtest/gtest.h>

#include "helpers.h"

namespace redsoc {
namespace {

using test::emitAddChain;
using test::emitLogicChain;
using test::makeTrace;
using test::runCore;

CoreConfig
cfg(SchedMode mode, const std::string &core = "medium")
{
    return configFor(core, mode);
}

Trace
logicChainTrace(unsigned n)
{
    ProgramBuilder b("logic-chain");
    emitLogicChain(b, n);
    b.halt();
    return makeTrace(b);
}

TEST(Redsoc, AcceleratesDependentLogicChains)
{
    const Trace trace = logicChainTrace(300);
    const CoreStats base = runCore(trace, cfg(SchedMode::Baseline));
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    // Narrow logical ops carry >50% slack: pairs execute per cycle
    // via EGPW, approaching 2x on the pure chain.
    EXPECT_LT(asDouble(red.cycles), asDouble(base.cycles) * 0.65);
    EXPECT_GT(red.recycled_ops, 100u);
    EXPECT_EQ(red.committed, base.committed);
}

TEST(Redsoc, TransparentChainsReachLengthTwoPlus)
{
    const Trace trace = logicChainTrace(300);
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    EXPECT_GE(red.expected_chain_length, 2.0);
    // Every recycled op is a link in some chain.
    u64 links = 0;
    for (u64 len = 2; len <= red.chain_lengths.maxSample(); ++len)
        links += red.chain_lengths.bucket(len) * (len - 1);
    EXPECT_EQ(links, red.recycled_ops);
}

TEST(Redsoc, ArithChainsRecycleAcrossBoundaries)
{
    // Wide adds (est ~6/8 cycle) cross boundaries when recycled:
    // 2-cycle holds appear and sustained recycling continues through
    // conventional wakeup (not just EGPW pairs).
    ProgramBuilder b("wide-adds");
    b.movImm(x(1), 0x123456789abcdefll);
    for (unsigned i = 0; i < 200; ++i)
        b.alui(Opcode::EOR, x(1), x(1), 0x5a5a5a5a5a5a5a5all),
            b.alui(Opcode::ADD, x(1), x(1), 0x111111111111111ll);
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats base = runCore(trace, cfg(SchedMode::Baseline));
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    EXPECT_LT(red.cycles, base.cycles);
    EXPECT_GT(red.two_cycle_holds, 0u);
}

TEST(Redsoc, EgpwIsRequiredToStartChains)
{
    const Trace trace = logicChainTrace(200);
    CoreConfig no_egpw = cfg(SchedMode::ReDSOC);
    no_egpw.egpw = false;
    const CoreStats off = runCore(trace, no_egpw);
    const CoreStats on = runCore(trace, cfg(SchedMode::ReDSOC));
    const CoreStats base = runCore(trace, cfg(SchedMode::Baseline));
    EXPECT_LT(on.cycles, off.cycles);
    // Without EGPW a serial short-delay chain cannot recycle at all.
    EXPECT_EQ(off.recycled_ops, 0u);
    EXPECT_NEAR(asDouble(off.cycles), asDouble(base.cycles),
                asDouble(base.cycles) * 0.02);
}

TEST(Redsoc, ZeroThresholdDisablesRecycling)
{
    const Trace trace = logicChainTrace(200);
    CoreConfig tight = cfg(SchedMode::ReDSOC);
    tight.slack_threshold_ticks = 0;
    const CoreStats stats = runCore(trace, tight);
    EXPECT_EQ(stats.recycled_ops, 0u);
}

TEST(Redsoc, ThresholdMonotonicallyEnablesRecycling)
{
    const Trace trace = logicChainTrace(300);
    u64 prev = 0;
    for (Tick t : {0u, 2u, 4u, 6u, 8u}) {
        CoreConfig c = cfg(SchedMode::ReDSOC);
        c.slack_threshold_ticks = t;
        const CoreStats stats = runCore(trace, c);
        EXPECT_GE(stats.recycled_ops, prev) << "threshold " << t;
        prev = stats.recycled_ops;
    }
}

TEST(Redsoc, EgpwAccountingIsConsistent)
{
    const Trace trace = logicChainTrace(300);
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    EXPECT_GT(red.egpw_requests, 0u);
    EXPECT_LE(red.egpw_grants, red.egpw_requests);
    EXPECT_LE(red.egpw_wasted, red.egpw_grants);
}

TEST(Redsoc, SkewedSelectProtectsConventionalRequests)
{
    // Heavy ALU contention: many parallel chains on a small core.
    ProgramBuilder b("contend");
    for (unsigned r = 1; r <= 6; ++r)
        b.movImm(x(r), 0x55 + r);
    for (unsigned i = 0; i < 120; ++i)
        for (unsigned r = 1; r <= 6; ++r)
            b.alui(Opcode::EOR, x(r), x(r), 0x33);
    b.halt();
    const Trace trace = makeTrace(b);
    CoreConfig skew = cfg(SchedMode::ReDSOC, "small");
    CoreConfig noskew = skew;
    noskew.skewed_select = false;
    const CoreStats with = runCore(trace, skew);
    const CoreStats without = runCore(trace, noskew);
    // Un-skewed selection lets speculative grants displace useful
    // work; skewed must be at least as good (within noise).
    EXPECT_LE(with.cycles, without.cycles + without.cycles / 20);
}

TEST(Redsoc, WidthMispredictionTriggersReplay)
{
    // One PC whose operand width flips from narrow to wide after the
    // predictor saturates: exactly the aggressive-mispredict case.
    MemoryImage mem;
    for (unsigned i = 0; i < 64; ++i)
        mem.poke64(0x1000 + 8 * i, i < 48 ? 0x7f : 0x7fffffffffffll);
    ProgramBuilder b("flip");
    b.movImm(x(1), 0x1000);
    b.movImm(x(2), 64);
    b.movImm(x(3), 0);
    auto loop = b.newLabel();
    b.bind(loop);
    b.load(Opcode::LDR, x(4), x(1), 0);
    b.alu(Opcode::ADD, x(3), x(3), x(4)); // width flips at i=48
    b.alui(Opcode::ADD, x(1), x(1), 8);
    b.alui(Opcode::SUB, x(2), x(2), 1);
    b.bnez(x(2), loop);
    b.halt();
    const Trace trace = makeTrace(b, &mem);
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    EXPECT_GE(red.width_aggressive, 1u);
    // One hard width flip mispredicts every in-flight instance of the
    // PC once; the rate is still a small fraction of predictions.
    EXPECT_LT(red.widthAggressiveRate(), 0.15);
    EXPECT_EQ(red.committed, trace.size());
}

TEST(Redsoc, OperationalMatchesIllustrativeClosely)
{
    // The paper: the Operational design performs within ~1% of the
    // Illustrative one.
    ProgramBuilder b("two-src");
    b.movImm(x(1), 0x5);
    b.movImm(x(2), 0x9);
    for (unsigned i = 0; i < 150; ++i) {
        b.alu(Opcode::EOR, x(3), x(1), x(2));
        b.alui(Opcode::ADD, x(1), x(3), 1);
        b.alui(Opcode::EOR, x(2), x(3), 0x3c);
    }
    b.halt();
    const Trace trace = makeTrace(b);
    CoreConfig oper = cfg(SchedMode::ReDSOC);
    CoreConfig illus = oper;
    illus.rs_design = RsDesign::Illustrative;
    const CoreStats o = runCore(trace, oper);
    const CoreStats i = runCore(trace, illus);
    EXPECT_NEAR(asDouble(o.cycles), asDouble(i.cycles),
                asDouble(i.cycles) * 0.03);
    // Illustrative tracks all tags: no last-arrival prediction.
    EXPECT_EQ(i.la_predictions, 0u);
    EXPECT_GT(o.la_predictions, 0u);
}

TEST(Redsoc, VmlaAccumulateChainsRecycle)
{
    ProgramBuilder b("vmla-chain");
    b.movImm(x(1), 3);
    b.vdup(v(1), x(1), VecType::I16);
    b.vdup(v(2), x(1), VecType::I16);
    b.vdup(v(0), kZeroReg, VecType::I16);
    for (unsigned i = 0; i < 150; ++i)
        b.vmla(v(0), v(1), v(2), VecType::I16);
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats base = runCore(trace, cfg(SchedMode::Baseline));
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    // The accumulate chain late-forwards in both modes (single-cycle
    // effective latency) and recycles type-slack under ReDSOC.
    EXPECT_LE(base.cycles, 170u);
    EXPECT_LT(red.cycles, base.cycles);
    EXPECT_GT(red.recycled_ops, 0u);
}

TEST(Redsoc, RecyclingNeverChangesCommitCount)
{
    for (const char *core : {"small", "medium", "big"}) {
        const Trace trace = logicChainTrace(120);
        const CoreStats base = runCore(trace, cfg(SchedMode::Baseline,
                                                  core));
        const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC,
                                                 core));
        EXPECT_EQ(base.committed, red.committed);
        EXPECT_EQ(red.committed, trace.size());
    }
}

TEST(Redsoc, BiggerCoresRecycleMore)
{
    // Mixed parallel chains: the big core has more idle units for
    // consumers to flow into (the paper's core-size trend).
    ProgramBuilder b("parallel");
    for (unsigned r = 1; r <= 4; ++r)
        b.movImm(x(r), 0x11 * r);
    for (unsigned i = 0; i < 150; ++i)
        for (unsigned r = 1; r <= 4; ++r)
            b.alui(Opcode::EOR, x(r), x(r), 0x2d);
    b.halt();
    const Trace trace = makeTrace(b);

    auto speedup = [&](const char *core) {
        const CoreStats base =
            runCore(trace, cfg(SchedMode::Baseline, core));
        const CoreStats red =
            runCore(trace, cfg(SchedMode::ReDSOC, core));
        return static_cast<double>(base.cycles) /
               static_cast<double>(red.cycles);
    };
    EXPECT_GT(speedup("big"), speedup("small") - 0.02);
}

TEST(Mos, FusesDependentPairsThatFit)
{
    const Trace trace = logicChainTrace(200);
    const CoreStats base = runCore(trace, cfg(SchedMode::Baseline));
    const CoreStats mos = runCore(trace, cfg(SchedMode::MOS));
    EXPECT_GT(mos.fused_ops, 50u);
    EXPECT_LT(mos.cycles, base.cycles);
    EXPECT_EQ(mos.recycled_ops, 0u); // fusion, not transparency
}

TEST(Mos, WideArithPairsDoNotFit)
{
    // Two wide adds exceed a cycle: no fusion opportunity.
    ProgramBuilder b("wide");
    b.movImm(x(1), 0x123456789abcdefll);
    for (unsigned i = 0; i < 100; ++i)
        b.alu(Opcode::ADD, x(1), x(1), x(1));
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats mos = runCore(trace, cfg(SchedMode::MOS));
    EXPECT_EQ(mos.fused_ops, 0u);
}

TEST(Mos, RedsocOutperformsMosOnCrossingChains)
{
    // Alternating shift+add chain: pairs do not fit in one cycle, so
    // MOS stalls at baseline speed while ReDSOC still accumulates
    // slack across boundaries (the paper's central comparison).
    ProgramBuilder b("mix");
    b.movImm(x(1), 0x1234567ll);
    for (unsigned i = 0; i < 150; ++i) {
        b.alui(Opcode::ADD, x(1), x(1), 0x7fffffffll);
        b.rorImm(x(1), x(1), 7);
    }
    b.halt();
    const Trace trace = makeTrace(b);
    const CoreStats base = runCore(trace, cfg(SchedMode::Baseline));
    const CoreStats mos = runCore(trace, cfg(SchedMode::MOS));
    const CoreStats red = runCore(trace, cfg(SchedMode::ReDSOC));
    EXPECT_LT(red.cycles, mos.cycles);
    EXPECT_LE(mos.cycles, base.cycles);
}

} // namespace
} // namespace redsoc

file(REMOVE_RECURSE
  "CMakeFiles/ml_pipeline.dir/ml_pipeline.cpp.o"
  "CMakeFiles/ml_pipeline.dir/ml_pipeline.cpp.o.d"
  "ml_pipeline"
  "ml_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

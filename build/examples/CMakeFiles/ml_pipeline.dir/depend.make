# Empty dependencies file for ml_pipeline.
# This may be replaced when dependencies are built.

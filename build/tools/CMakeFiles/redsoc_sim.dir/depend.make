# Empty dependencies file for redsoc_sim.
# This may be replaced when dependencies are built.

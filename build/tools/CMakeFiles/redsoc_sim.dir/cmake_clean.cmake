file(REMOVE_RECURSE
  "CMakeFiles/redsoc_sim.dir/redsoc_sim.cc.o"
  "CMakeFiles/redsoc_sim.dir/redsoc_sim.cc.o.d"
  "redsoc_sim"
  "redsoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redsoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

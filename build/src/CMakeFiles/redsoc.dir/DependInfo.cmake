
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fusion.cc" "src/CMakeFiles/redsoc.dir/baselines/fusion.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/baselines/fusion.cc.o.d"
  "/root/repo/src/baselines/timing_speculation.cc" "src/CMakeFiles/redsoc.dir/baselines/timing_speculation.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/baselines/timing_speculation.cc.o.d"
  "/root/repo/src/common/bitutils.cc" "src/CMakeFiles/redsoc.dir/common/bitutils.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/common/bitutils.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/redsoc.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/redsoc.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/redsoc.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/redsoc.dir/common/table.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/common/table.cc.o.d"
  "/root/repo/src/core/core_config.cc" "src/CMakeFiles/redsoc.dir/core/core_config.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/core_config.cc.o.d"
  "/root/repo/src/core/fu_pool.cc" "src/CMakeFiles/redsoc.dir/core/fu_pool.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/fu_pool.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/redsoc.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/ooo_core.cc" "src/CMakeFiles/redsoc.dir/core/ooo_core.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/ooo_core.cc.o.d"
  "/root/repo/src/core/rat.cc" "src/CMakeFiles/redsoc.dir/core/rat.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/rat.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/redsoc.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/rob.cc.o.d"
  "/root/repo/src/core/rs.cc" "src/CMakeFiles/redsoc.dir/core/rs.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/rs.cc.o.d"
  "/root/repo/src/core/select_logic.cc" "src/CMakeFiles/redsoc.dir/core/select_logic.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/core/select_logic.cc.o.d"
  "/root/repo/src/func/interpreter.cc" "src/CMakeFiles/redsoc.dir/func/interpreter.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/func/interpreter.cc.o.d"
  "/root/repo/src/func/memory_image.cc" "src/CMakeFiles/redsoc.dir/func/memory_image.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/func/memory_image.cc.o.d"
  "/root/repo/src/func/trace.cc" "src/CMakeFiles/redsoc.dir/func/trace.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/func/trace.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/redsoc.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/redsoc.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/inst.cc" "src/CMakeFiles/redsoc.dir/isa/inst.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/isa/inst.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/redsoc.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/redsoc.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/redsoc.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/redsoc.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/CMakeFiles/redsoc.dir/mem/prefetcher.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/mem/prefetcher.cc.o.d"
  "/root/repo/src/power/dvfs.cc" "src/CMakeFiles/redsoc.dir/power/dvfs.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/power/dvfs.cc.o.d"
  "/root/repo/src/predictors/branch_predictor.cc" "src/CMakeFiles/redsoc.dir/predictors/branch_predictor.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/predictors/branch_predictor.cc.o.d"
  "/root/repo/src/predictors/last_arrival_predictor.cc" "src/CMakeFiles/redsoc.dir/predictors/last_arrival_predictor.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/predictors/last_arrival_predictor.cc.o.d"
  "/root/repo/src/predictors/width_predictor.cc" "src/CMakeFiles/redsoc.dir/predictors/width_predictor.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/predictors/width_predictor.cc.o.d"
  "/root/repo/src/redsoc/skewed_select.cc" "src/CMakeFiles/redsoc.dir/redsoc/skewed_select.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/redsoc/skewed_select.cc.o.d"
  "/root/repo/src/redsoc/transparent.cc" "src/CMakeFiles/redsoc.dir/redsoc/transparent.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/redsoc/transparent.cc.o.d"
  "/root/repo/src/sim/driver.cc" "src/CMakeFiles/redsoc.dir/sim/driver.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/sim/driver.cc.o.d"
  "/root/repo/src/timing/completion_instant.cc" "src/CMakeFiles/redsoc.dir/timing/completion_instant.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/timing/completion_instant.cc.o.d"
  "/root/repo/src/timing/kogge_stone.cc" "src/CMakeFiles/redsoc.dir/timing/kogge_stone.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/timing/kogge_stone.cc.o.d"
  "/root/repo/src/timing/slack_lut.cc" "src/CMakeFiles/redsoc.dir/timing/slack_lut.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/timing/slack_lut.cc.o.d"
  "/root/repo/src/timing/timing_model.cc" "src/CMakeFiles/redsoc.dir/timing/timing_model.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/timing/timing_model.cc.o.d"
  "/root/repo/src/workloads/inputs.cc" "src/CMakeFiles/redsoc.dir/workloads/inputs.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/workloads/inputs.cc.o.d"
  "/root/repo/src/workloads/mibench.cc" "src/CMakeFiles/redsoc.dir/workloads/mibench.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/workloads/mibench.cc.o.d"
  "/root/repo/src/workloads/ml_kernels.cc" "src/CMakeFiles/redsoc.dir/workloads/ml_kernels.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/workloads/ml_kernels.cc.o.d"
  "/root/repo/src/workloads/op_mix.cc" "src/CMakeFiles/redsoc.dir/workloads/op_mix.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/workloads/op_mix.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/redsoc.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/speclike.cc" "src/CMakeFiles/redsoc.dir/workloads/speclike.cc.o" "gcc" "src/CMakeFiles/redsoc.dir/workloads/speclike.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

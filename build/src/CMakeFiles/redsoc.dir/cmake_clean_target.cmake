file(REMOVE_RECURSE
  "libredsoc.a"
)

# Empty compiler generated dependencies file for redsoc.
# This may be replaced when dependencies are built.

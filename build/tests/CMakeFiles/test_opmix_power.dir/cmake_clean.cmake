file(REMOVE_RECURSE
  "CMakeFiles/test_opmix_power.dir/test_opmix_power.cc.o"
  "CMakeFiles/test_opmix_power.dir/test_opmix_power.cc.o.d"
  "test_opmix_power"
  "test_opmix_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opmix_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_redsoc.
# This may be replaced when dependencies are built.

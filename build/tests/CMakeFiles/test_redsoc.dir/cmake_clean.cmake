file(REMOVE_RECURSE
  "CMakeFiles/test_redsoc.dir/test_redsoc.cc.o"
  "CMakeFiles/test_redsoc.dir/test_redsoc.cc.o.d"
  "test_redsoc"
  "test_redsoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redsoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

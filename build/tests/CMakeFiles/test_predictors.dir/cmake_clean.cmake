file(REMOVE_RECURSE
  "CMakeFiles/test_predictors.dir/test_predictors.cc.o"
  "CMakeFiles/test_predictors.dir/test_predictors.cc.o.d"
  "test_predictors"
  "test_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

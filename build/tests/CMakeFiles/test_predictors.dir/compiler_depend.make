# Empty compiler generated dependencies file for test_predictors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_select.dir/test_select.cc.o"
  "CMakeFiles/test_select.dir/test_select.cc.o.d"
  "test_select"
  "test_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_select.
# This may be replaced when dependencies are built.

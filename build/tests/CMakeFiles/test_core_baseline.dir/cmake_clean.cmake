file(REMOVE_RECURSE
  "CMakeFiles/test_core_baseline.dir/test_core_baseline.cc.o"
  "CMakeFiles/test_core_baseline.dir/test_core_baseline.cc.o.d"
  "test_core_baseline"
  "test_core_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_core_baseline.
# This may be replaced when dependencies are built.

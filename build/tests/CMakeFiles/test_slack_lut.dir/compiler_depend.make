# Empty compiler generated dependencies file for test_slack_lut.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_slack_lut.dir/test_slack_lut.cc.o"
  "CMakeFiles/test_slack_lut.dir/test_slack_lut.cc.o.d"
  "test_slack_lut"
  "test_slack_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slack_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

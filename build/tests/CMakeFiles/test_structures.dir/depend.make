# Empty dependencies file for test_structures.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_structures.dir/test_structures.cc.o"
  "CMakeFiles/test_structures.dir/test_structures.cc.o.d"
  "test_structures"
  "test_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

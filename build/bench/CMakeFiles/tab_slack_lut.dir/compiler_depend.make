# Empty compiler generated dependencies file for tab_slack_lut.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_slack_lut.dir/tab_slack_lut.cc.o"
  "CMakeFiles/tab_slack_lut.dir/tab_slack_lut.cc.o.d"
  "tab_slack_lut"
  "tab_slack_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_slack_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

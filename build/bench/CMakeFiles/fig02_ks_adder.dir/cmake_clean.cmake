file(REMOVE_RECURSE
  "CMakeFiles/fig02_ks_adder.dir/fig02_ks_adder.cc.o"
  "CMakeFiles/fig02_ks_adder.dir/fig02_ks_adder.cc.o.d"
  "fig02_ks_adder"
  "fig02_ks_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ks_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig02_ks_adder.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig13_speedup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig13_speedup.dir/fig13_speedup.cc.o"
  "CMakeFiles/fig13_speedup.dir/fig13_speedup.cc.o.d"
  "fig13_speedup"
  "fig13_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

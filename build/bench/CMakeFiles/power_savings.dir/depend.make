# Empty dependencies file for power_savings.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/power_savings.dir/power_savings.cc.o"
  "CMakeFiles/power_savings.dir/power_savings.cc.o.d"
  "power_savings"
  "power_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sweep_slack_threshold.dir/sweep_slack_threshold.cc.o"
  "CMakeFiles/sweep_slack_threshold.dir/sweep_slack_threshold.cc.o.d"
  "sweep_slack_threshold"
  "sweep_slack_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_slack_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sweep_slack_threshold.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for tab2_kernels.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab2_kernels.dir/tab2_kernels.cc.o"
  "CMakeFiles/tab2_kernels.dir/tab2_kernels.cc.o.d"
  "tab2_kernels"
  "tab2_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

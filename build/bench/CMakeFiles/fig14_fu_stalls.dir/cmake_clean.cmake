file(REMOVE_RECURSE
  "CMakeFiles/fig14_fu_stalls.dir/fig14_fu_stalls.cc.o"
  "CMakeFiles/fig14_fu_stalls.dir/fig14_fu_stalls.cc.o.d"
  "fig14_fu_stalls"
  "fig14_fu_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fu_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_fu_stalls.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab1_configs.dir/tab1_configs.cc.o"
  "CMakeFiles/tab1_configs.dir/tab1_configs.cc.o.d"
  "tab1_configs"
  "tab1_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tab1_configs.
# This may be replaced when dependencies are built.

# Empty dependencies file for sweep_slack_precision.
# This may be replaced when dependencies are built.

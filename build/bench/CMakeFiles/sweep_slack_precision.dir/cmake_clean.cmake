file(REMOVE_RECURSE
  "CMakeFiles/sweep_slack_precision.dir/sweep_slack_precision.cc.o"
  "CMakeFiles/sweep_slack_precision.dir/sweep_slack_precision.cc.o.d"
  "sweep_slack_precision"
  "sweep_slack_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_slack_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

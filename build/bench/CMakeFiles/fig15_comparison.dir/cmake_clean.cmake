file(REMOVE_RECURSE
  "CMakeFiles/fig15_comparison.dir/fig15_comparison.cc.o"
  "CMakeFiles/fig15_comparison.dir/fig15_comparison.cc.o.d"
  "fig15_comparison"
  "fig15_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig15_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_width_predictor.dir/tab_width_predictor.cc.o"
  "CMakeFiles/tab_width_predictor.dir/tab_width_predictor.cc.o.d"
  "tab_width_predictor"
  "tab_width_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_width_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

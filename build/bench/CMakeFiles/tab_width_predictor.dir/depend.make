# Empty dependencies file for tab_width_predictor.
# This may be replaced when dependencies are built.

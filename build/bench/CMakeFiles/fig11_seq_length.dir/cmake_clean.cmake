file(REMOVE_RECURSE
  "CMakeFiles/fig11_seq_length.dir/fig11_seq_length.cc.o"
  "CMakeFiles/fig11_seq_length.dir/fig11_seq_length.cc.o.d"
  "fig11_seq_length"
  "fig11_seq_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_seq_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_seq_length.
# This may be replaced when dependencies are built.

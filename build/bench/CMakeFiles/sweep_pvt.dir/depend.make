# Empty dependencies file for sweep_pvt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sweep_pvt.dir/sweep_pvt.cc.o"
  "CMakeFiles/sweep_pvt.dir/sweep_pvt.cc.o.d"
  "sweep_pvt"
  "sweep_pvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_pvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig01_alu_times.dir/fig01_alu_times.cc.o"
  "CMakeFiles/fig01_alu_times.dir/fig01_alu_times.cc.o.d"
  "fig01_alu_times"
  "fig01_alu_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_alu_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

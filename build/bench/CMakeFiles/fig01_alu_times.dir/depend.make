# Empty dependencies file for fig01_alu_times.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_tag_mispred.dir/fig12_tag_mispred.cc.o"
  "CMakeFiles/fig12_tag_mispred.dir/fig12_tag_mispred.cc.o.d"
  "fig12_tag_mispred"
  "fig12_tag_mispred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tag_mispred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig12_tag_mispred.
# This may be replaced when dependencies are built.

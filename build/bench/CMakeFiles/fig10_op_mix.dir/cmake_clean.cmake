file(REMOVE_RECURSE
  "CMakeFiles/fig10_op_mix.dir/fig10_op_mix.cc.o"
  "CMakeFiles/fig10_op_mix.dir/fig10_op_mix.cc.o.d"
  "fig10_op_mix"
  "fig10_op_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_op_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

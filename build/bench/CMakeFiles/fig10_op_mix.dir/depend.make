# Empty dependencies file for fig10_op_mix.
# This may be replaced when dependencies are built.
